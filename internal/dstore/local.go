package dstore

import (
	"fmt"
	"time"

	"pstorm/internal/obs"
)

// DefaultSplits are the split points pstorm uses for its profile table:
// row keys are "<ftype>/<jobID>" with ftypes costmap, costred, dynmap,
// dynred, meta, statmap, statred (plus "!bounds/..." rows), so these
// cuts spread the feature families across regions.
var DefaultSplits = []string{"dyn", "meta", "stat"}

// LocalOptions configures StartLocalCluster.
type LocalOptions struct {
	// Servers is the number of region servers (default 3).
	Servers int
	// Replication is copies per region, primary included (default 2,
	// clamped to Servers).
	Replication int
	// HeartbeatTimeout is how long the master waits before declaring a
	// silent server dead (default 2s).
	HeartbeatTimeout time.Duration
	// Splits are the region split points for created tables (default
	// DefaultSplits).
	Splits []string
	// Background starts the master's liveness loop and per-server
	// heartbeats. Leave false in deterministic tests and drive
	// Heartbeat/CheckLiveness manually.
	Background bool
	// HeartbeatInterval is the background heartbeat period (default
	// HeartbeatTimeout/4).
	HeartbeatInterval time.Duration
	// WrapConn, when set, is installed on the cluster's Registry before
	// anything resolves — the chaos harness's transport hook.
	WrapConn func(id string, conn ServerConn) ServerConn
	// Now, when set, is the master's clock (deterministic chaos tests
	// drive liveness and health checks against it).
	Now func() time.Time

	// Masters is how many masters to run (default 1). With more than
	// one, masters[0] boots as leader and the rest as standbys tailing
	// its journal; the cluster's MasterConn fails over across all of
	// them, and election is driven by ElectionTick (Background) or the
	// test's own tick schedule.
	Masters int
	// LeaseDuration is the leader lease standbys wait out before
	// promoting (default 2×HeartbeatTimeout).
	LeaseDuration time.Duration
	// Seed feeds the deterministic election tie-break.
	Seed int64
	// WrapPeerConn, when set, decorates every master-to-master conn —
	// the chaos harness's seam for partitioning the electorate.
	WrapPeerConn func(id string, conn MasterPeerConn) MasterPeerConn
}

// LocalCluster is a whole dstore deployment in one process: a master
// plus N region servers sharing a Registry, plus a routing client.
// It exists for tests and benchmarks; pstormd wires the same pieces
// over TCP.
type LocalCluster struct {
	// Master is the bootstrap leader (Masters[0]): kept as a field so
	// single-master tests and callers read naturally.
	Master  *Master
	Masters []*Master
	Reg     *Registry
	Servers []*RegionServer

	client *Client
	mc     MasterConn
}

// StartLocalCluster builds and joins a cluster.
func StartLocalCluster(opts LocalOptions) (*LocalCluster, error) {
	if opts.Servers <= 0 {
		opts.Servers = 3
	}
	if opts.Replication <= 0 {
		opts.Replication = 2
	}
	if opts.Replication > opts.Servers {
		opts.Replication = opts.Servers
	}
	if opts.Splits == nil {
		opts.Splits = DefaultSplits
	}
	if opts.Masters <= 0 {
		opts.Masters = 1
	}
	reg := NewRegistry()
	reg.WrapConn = opts.WrapConn

	// The electorate: every master knows the full peer list. Conns are
	// resolved lazily through byID, so masters constructed later in this
	// loop are still reachable from earlier ones.
	peers := make([]Peer, opts.Masters)
	for i := range peers {
		peers[i] = Peer{ID: fmt.Sprintf("m-%d", i)}
	}
	byID := make(map[string]*Master, opts.Masters)
	resolver := func(p Peer) (MasterPeerConn, error) {
		pm, ok := byID[p.ID]
		if !ok {
			return nil, fmt.Errorf("dstore: unknown local master %q", p.ID)
		}
		var conn MasterPeerConn = ConnectMasterPeer(pm)
		if opts.WrapPeerConn != nil {
			conn = opts.WrapPeerConn(p.ID, conn)
		}
		return conn, nil
	}
	mopts := MasterOptions{
		HeartbeatTimeout: opts.HeartbeatTimeout,
		Replication:      opts.Replication,
		DefaultSplits:    opts.Splits,
		Now:              opts.Now,
		LeaseDuration:    opts.LeaseDuration,
		Seed:             opts.Seed,
	}
	if opts.Masters > 1 {
		mopts.Peers = peers
		mopts.PeerResolver = resolver
	}
	c := &LocalCluster{Reg: reg}
	for i := 0; i < opts.Masters; i++ {
		mo := mopts
		mo.ID = peers[i].ID
		mo.Standby = i > 0
		m := NewMaster(reg, mo)
		byID[m.MasterID()] = m
		c.Masters = append(c.Masters, m)
	}
	c.Master = c.Masters[0]
	if opts.Masters > 1 {
		c.mc = ConnectMasters(c.Masters...)
	} else {
		c.mc = ConnectMaster(c.Master)
	}
	for i := 0; i < opts.Servers; i++ {
		rs := NewRegionServer(fmt.Sprintf("rs-%d", i), reg)
		if err := c.mc.Join(Peer{ID: rs.ID()}); err != nil {
			return nil, err
		}
		c.Servers = append(c.Servers, rs)
	}
	if opts.Background {
		interval := opts.HeartbeatInterval
		if interval <= 0 {
			interval = c.Master.opts.heartbeatTimeout() / 4
		}
		for _, rs := range c.Servers {
			rs.StartHeartbeats(c.mc, Peer{ID: rs.ID()}, interval)
		}
		for _, m := range c.Masters {
			m.Start()
		}
	}
	c.client = NewClient(c.mc, reg)
	return c, nil
}

// MasterConn returns the cluster's (failover-aware) master connection.
func (c *LocalCluster) MasterConn() MasterConn { return c.mc }

// MasterByID returns the master with the given ID, or nil.
func (c *LocalCluster) MasterByID(id string) *Master {
	for _, m := range c.Masters {
		if m.MasterID() == id {
			return m
		}
	}
	return nil
}

// Leader returns the master currently acting as leader, or nil during a
// takeover window.
func (c *LocalCluster) Leader() *Master {
	for _, m := range c.Masters {
		if !m.Stopped() && m.IsLeader() {
			return m
		}
	}
	return nil
}

// KillMaster stops a master by ID, simulating a control-plane crash.
// Returns false if no such master exists or it is already stopped.
func (c *LocalCluster) KillMaster(id string) bool {
	m := c.MasterByID(id)
	if m == nil || m.Stopped() {
		return false
	}
	m.Stop()
	return true
}

// Client returns the cluster's routing client.
func (c *LocalCluster) Client() *Client { return c.client }

// Server returns the region server with the given ID, or nil.
func (c *LocalCluster) Server(id string) *RegionServer {
	for _, rs := range c.Servers {
		if rs.ID() == id {
			return rs
		}
	}
	return nil
}

// KillServer stops a region server by ID, simulating a crash. Returns
// false if no such server exists (or it is already stopped).
func (c *LocalCluster) KillServer(id string) bool {
	rs := c.Server(id)
	if rs == nil || rs.Stopped() {
		return false
	}
	rs.Stop()
	return true
}

// Snapshot merges the observability state of every cluster component:
// master (failover/move events), each region server (latency
// histograms, plus its embedded hstore's LSM counters), and the
// routing client (retries, backoff, give-ups).
func (c *LocalCluster) Snapshot() obs.Snapshot {
	var snaps []obs.Snapshot
	for _, m := range c.Masters {
		snaps = append(snaps, m.Obs().Snapshot())
	}
	for _, rs := range c.Servers {
		snaps = append(snaps, rs.Obs().Snapshot(), rs.HStore().Obs().Snapshot())
	}
	if c.client != nil {
		snaps = append(snaps, c.client.Obs().Snapshot())
	}
	return obs.Merge(snaps...)
}

// Close stops every master loop and every region server.
func (c *LocalCluster) Close() {
	for _, m := range c.Masters {
		m.Close()
	}
	for _, rs := range c.Servers {
		rs.Stop()
	}
}
