package dstore

import (
	"fmt"
	"time"

	"pstorm/internal/obs"
)

// DefaultSplits are the split points pstorm uses for its profile table:
// row keys are "<ftype>/<jobID>" with ftypes costmap, costred, dynmap,
// dynred, meta, statmap, statred (plus "!bounds/..." rows), so these
// cuts spread the feature families across regions.
var DefaultSplits = []string{"dyn", "meta", "stat"}

// LocalOptions configures StartLocalCluster.
type LocalOptions struct {
	// Servers is the number of region servers (default 3).
	Servers int
	// Replication is copies per region, primary included (default 2,
	// clamped to Servers).
	Replication int
	// HeartbeatTimeout is how long the master waits before declaring a
	// silent server dead (default 2s).
	HeartbeatTimeout time.Duration
	// Splits are the region split points for created tables (default
	// DefaultSplits).
	Splits []string
	// Background starts the master's liveness loop and per-server
	// heartbeats. Leave false in deterministic tests and drive
	// Heartbeat/CheckLiveness manually.
	Background bool
	// HeartbeatInterval is the background heartbeat period (default
	// HeartbeatTimeout/4).
	HeartbeatInterval time.Duration
	// WrapConn, when set, is installed on the cluster's Registry before
	// anything resolves — the chaos harness's transport hook.
	WrapConn func(id string, conn ServerConn) ServerConn
	// Now, when set, is the master's clock (deterministic chaos tests
	// drive liveness and health checks against it).
	Now func() time.Time
}

// LocalCluster is a whole dstore deployment in one process: a master
// plus N region servers sharing a Registry, plus a routing client.
// It exists for tests and benchmarks; pstormd wires the same pieces
// over TCP.
type LocalCluster struct {
	Master  *Master
	Reg     *Registry
	Servers []*RegionServer

	client *Client
}

// StartLocalCluster builds and joins a cluster.
func StartLocalCluster(opts LocalOptions) (*LocalCluster, error) {
	if opts.Servers <= 0 {
		opts.Servers = 3
	}
	if opts.Replication <= 0 {
		opts.Replication = 2
	}
	if opts.Replication > opts.Servers {
		opts.Replication = opts.Servers
	}
	if opts.Splits == nil {
		opts.Splits = DefaultSplits
	}
	reg := NewRegistry()
	reg.WrapConn = opts.WrapConn
	m := NewMaster(reg, MasterOptions{
		HeartbeatTimeout: opts.HeartbeatTimeout,
		Replication:      opts.Replication,
		DefaultSplits:    opts.Splits,
		Now:              opts.Now,
	})
	c := &LocalCluster{Master: m, Reg: reg}
	mc := ConnectMaster(m)
	for i := 0; i < opts.Servers; i++ {
		rs := NewRegionServer(fmt.Sprintf("rs-%d", i), reg)
		if err := m.Join(Peer{ID: rs.ID()}); err != nil {
			return nil, err
		}
		c.Servers = append(c.Servers, rs)
	}
	if opts.Background {
		interval := opts.HeartbeatInterval
		if interval <= 0 {
			interval = m.opts.heartbeatTimeout() / 4
		}
		for _, rs := range c.Servers {
			rs.StartHeartbeats(mc, interval)
		}
		m.Start()
	}
	c.client = NewClient(mc, reg)
	return c, nil
}

// Client returns the cluster's routing client.
func (c *LocalCluster) Client() *Client { return c.client }

// Server returns the region server with the given ID, or nil.
func (c *LocalCluster) Server(id string) *RegionServer {
	for _, rs := range c.Servers {
		if rs.ID() == id {
			return rs
		}
	}
	return nil
}

// KillServer stops a region server by ID, simulating a crash. Returns
// false if no such server exists (or it is already stopped).
func (c *LocalCluster) KillServer(id string) bool {
	rs := c.Server(id)
	if rs == nil || rs.Stopped() {
		return false
	}
	rs.Stop()
	return true
}

// Snapshot merges the observability state of every cluster component:
// master (failover/move events), each region server (latency
// histograms, plus its embedded hstore's LSM counters), and the
// routing client (retries, backoff, give-ups).
func (c *LocalCluster) Snapshot() obs.Snapshot {
	snaps := []obs.Snapshot{c.Master.Obs().Snapshot()}
	for _, rs := range c.Servers {
		snaps = append(snaps, rs.Obs().Snapshot(), rs.HStore().Obs().Snapshot())
	}
	if c.client != nil {
		snaps = append(snaps, c.client.Obs().Snapshot())
	}
	return obs.Merge(snaps...)
}

// Close stops the master loop and every region server.
func (c *LocalCluster) Close() {
	c.Master.Close()
	for _, rs := range c.Servers {
		rs.Stop()
	}
}
