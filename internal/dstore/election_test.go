package dstore

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// gatedPeers is a test-controlled master-to-master transport fault: a
// blocked master can neither ping nor be pinged nor serve journal
// tails, which is exactly what a network partition looks like to the
// electorate.
type gatedPeers struct {
	mu      sync.Mutex
	blocked map[string]bool
}

func (g *gatedPeers) block(id string)    { g.mu.Lock(); defer g.mu.Unlock(); g.blocked[id] = true }
func (g *gatedPeers) heal(id string)     { g.mu.Lock(); defer g.mu.Unlock(); delete(g.blocked, id) }
func (g *gatedPeers) cut(id string) bool { g.mu.Lock(); defer g.mu.Unlock(); return g.blocked[id] }

func (g *gatedPeers) wrap(id string, conn MasterPeerConn) MasterPeerConn {
	return &gatedPeerConn{g: g, id: id, inner: conn}
}

type gatedPeerConn struct {
	g     *gatedPeers
	id    string
	inner MasterPeerConn
}

func (c *gatedPeerConn) Ping(from string) (PeerStatus, error) {
	if c.g.cut(c.id) || c.g.cut(from) {
		return PeerStatus{}, fmt.Errorf("test: master link cut: %w", errTransport)
	}
	return c.inner.Ping(from)
}

func (c *gatedPeerConn) JournalTail(gen, off int64) (JournalTail, error) {
	if c.g.cut(c.id) {
		return JournalTail{}, fmt.Errorf("test: master link cut: %w", errTransport)
	}
	return c.inner.JournalTail(gen, off)
}

func (c *gatedPeerConn) JournalPush(from string, t JournalTail) (JournalPushAck, error) {
	if c.g.cut(c.id) || c.g.cut(from) {
		return JournalPushAck{}, fmt.Errorf("test: master link cut: %w", errTransport)
	}
	return c.inner.JournalPush(from, t)
}

// startHACluster builds a deterministic 3-master cluster: no
// background loops, every master on the shared injected clock,
// heartbeat timeout 2s and leader lease 4s.
func startHACluster(t *testing.T, servers int, gate *gatedPeers) (*LocalCluster, *testClock) {
	t.Helper()
	clock := newTestClock()
	opts := LocalOptions{
		Servers:          servers,
		Replication:      2,
		Splits:           []string{"m"},
		Masters:          3,
		HeartbeatTimeout: 2 * time.Second,
		LeaseDuration:    4 * time.Second,
		Now:              clock.now,
	}
	if gate != nil {
		opts.WrapPeerConn = gate.wrap
	}
	c, err := StartLocalCluster(opts)
	if err != nil {
		t.Fatalf("StartLocalCluster: %v", err)
	}
	t.Cleanup(c.Close)
	beatAll(t, c)
	if err := c.Client().CreateTable(context.Background(), "t"); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	return c, clock
}

// tickAll runs one election tick on every live master at the clock's
// current instant, leaders first so standbys fold a fresh leader view.
func tickAll(c *LocalCluster, now time.Time) {
	for _, m := range c.Masters {
		if !m.Stopped() && m.IsLeader() {
			m.ElectionTick(now)
		}
	}
	for _, m := range c.Masters {
		if !m.Stopped() && !m.IsLeader() {
			m.ElectionTick(now)
		}
	}
}

// leaders returns the IDs of every live master currently in the leader
// role.
func leaders(c *LocalCluster) []string {
	var out []string
	for _, m := range c.Masters {
		if !m.Stopped() && m.IsLeader() {
			out = append(out, m.MasterID())
		}
	}
	return out
}

// TestElectionPromotesExactlyOneStandby kills the leader and expects,
// after the lease lapses, exactly one standby to promote — the one the
// seeded rank predicts — with a fenced epoch the region servers adopt.
func TestElectionPromotesExactlyOneStandby(t *testing.T) {
	c, clock := startHACluster(t, 3, nil)
	cl := c.Client()
	for _, row := range []string{"a", "m", "z"} {
		if err := cl.Put(context.Background(), "t", row, "c", []byte(row)); err != nil {
			t.Fatalf("Put(%s): %v", row, err)
		}
	}
	// Establish: everyone meets everyone, standbys mirror the journal.
	tickAll(c, clock.t)
	if got := leaders(c); len(got) != 1 || got[0] != "m-0" {
		t.Fatalf("bootstrap leaders = %v, want [m-0]", got)
	}

	// Predict the winner from the seeded rank: of the two standbys, the
	// one that outranks the other.
	m1, m2 := c.MasterByID("m-1"), c.MasterByID("m-2")
	want := "m-1"
	if m2.outranksMe("m-1") == false && m1.outranksMe("m-2") == false {
		t.Fatal("rank tie broken inconsistently")
	}
	if m1.outranksMe("m-2") { // m-2 beats m-1
		want = "m-2"
	}

	if !c.KillMaster("m-0") {
		t.Fatal("KillMaster(m-0) found nothing to kill")
	}
	// Inside the lease nobody promotes.
	clock.advance(time.Second)
	tickAll(c, clock.t)
	if got := leaders(c); len(got) != 0 {
		t.Fatalf("leader elected inside the lease: %v", got)
	}
	// Past the lease exactly one standby takes over.
	clock.advance(4 * time.Second)
	tickAll(c, clock.t)
	got := leaders(c)
	if len(got) != 1 || got[0] != want {
		t.Fatalf("post-lease leaders = %v, want [%s]", got, want)
	}
	nl := c.MasterByID(want)
	if nl.MasterEpoch() <= 0 {
		t.Fatalf("promoted leader minted epoch %d, want > 0", nl.MasterEpoch())
	}
	// The promotion sweep raised the epoch floor of every region's
	// primary (followers catch up on their next fenced control RPC).
	for _, g := range nl.Meta().Tables["t"] {
		rs := c.Server(g.Primary)
		if rs.SeenMasterEpoch() != nl.MasterEpoch() {
			t.Fatalf("primary %s fences at epoch %d, leader minted %d", rs.ID(), rs.SeenMasterEpoch(), nl.MasterEpoch())
		}
	}
	// Another tick settles the losing standby behind the new leader.
	tickAll(c, clock.t)
	if got := leaders(c); len(got) != 1 {
		t.Fatalf("leaders after settle = %v", got)
	}

	// The data plane survived: reads and writes flow through the
	// failover-aware master conn with no reconfiguration.
	for _, row := range []string{"a", "m", "z"} {
		got, ok, err := cl.Get(context.Background(), "t", row)
		if err != nil || !ok || string(got.Columns["c"]) != row {
			t.Fatalf("Get(%s) after takeover = %v %v %v", row, got, ok, err)
		}
	}
	if err := cl.Put(context.Background(), "t", "post", "c", []byte("post")); err != nil {
		t.Fatalf("Put after takeover: %v", err)
	}
	snap := c.Snapshot()
	if snap.Counters["dstore_master_elections_total"] != 1 {
		t.Fatalf("elections_total = %d, want 1", snap.Counters["dstore_master_elections_total"])
	}
	if snap.Gauges["dstore_master_leader"] != 1 {
		t.Fatalf("leader gauge = %g, want 1 across the fleet", snap.Gauges["dstore_master_leader"])
	}
}

// TestPartitionedLeaderIsFencedAndDeposed partitions the leader away
// from its peers, lets a standby promote, and checks both fencing
// paths: the old leader's next control RPC is rejected stale by the
// region servers (deposing it on the spot), and its epochs can never
// collide with the new leader's.
func TestPartitionedLeaderIsFencedAndDeposed(t *testing.T) {
	gate := &gatedPeers{blocked: make(map[string]bool)}
	c, clock := startHACluster(t, 3, gate)
	tickAll(c, clock.t)

	gate.block("m-0")
	clock.advance(5 * time.Second)
	beatAll(t, c) // region servers still reach the old leader
	tickAll(c, clock.t)
	got := leaders(c)
	if len(got) != 2 {
		// Two *candidates* across a partition is the expected state; the
		// old leader does not even know it has been superseded yet.
		t.Fatalf("leaders under partition = %v, want old + new candidate", got)
	}
	old := c.MasterByID("m-0")
	var promoted *Master
	for _, id := range got {
		if id != "m-0" {
			promoted = c.MasterByID(id)
		}
	}
	if promoted == nil {
		t.Fatalf("no standby promoted under partition: %v", got)
	}
	if promoted.MasterEpoch() == old.MasterEpoch() {
		t.Fatalf("epoch collision: both leaders at %d", old.MasterEpoch())
	}

	// The old leader tries to keep running the cluster: the region
	// servers, already swept to the new epoch, reject it as stale, and
	// the rejection itself deposes it.
	g := old.Meta().Tables["t"][0]
	_, err := old.MoveRegion("t", g.ID, g.Followers[0])
	if !errors.Is(err, ErrStaleMaster) {
		t.Fatalf("stale leader's MoveRegion err = %v, want ErrStaleMaster", err)
	}
	if old.IsLeader() {
		t.Fatal("old leader still leading after a stale rejection")
	}
	if got := leaders(c); len(got) != 1 || got[0] != promoted.MasterID() {
		t.Fatalf("leaders after depose = %v", got)
	}
	snap := c.Snapshot()
	if snap.Counters["dstore_master_stepdowns_total"] != 1 {
		t.Fatalf("stepdowns_total = %d, want 1", snap.Counters["dstore_master_stepdowns_total"])
	}
	var staleRejections int64
	for k, v := range snap.Counters {
		if strings.HasPrefix(k, "dstore_rs_stale_master_total") {
			staleRejections += v
		}
	}
	if staleRejections == 0 {
		t.Fatal("no region server ever rejected a stale epoch")
	}
}

// TestHealedLeaderStepsDownOnPing is the other depose path: a deposed
// leader that issues no control RPCs still steps down on its first
// healed ping exchange, because a peer reports a leader with a higher
// epoch.
func TestHealedLeaderStepsDownOnPing(t *testing.T) {
	gate := &gatedPeers{blocked: make(map[string]bool)}
	c, clock := startHACluster(t, 3, gate)
	tickAll(c, clock.t)

	gate.block("m-0")
	clock.advance(5 * time.Second)
	tickAll(c, clock.t)
	if got := leaders(c); len(got) != 2 {
		t.Fatalf("leaders under partition = %v", got)
	}
	gate.heal("m-0")
	clock.advance(time.Second)
	tickAll(c, clock.t)
	got := leaders(c)
	if len(got) != 1 || got[0] == "m-0" {
		t.Fatalf("leaders after heal = %v, want the promoted standby only", got)
	}
	if c.Snapshot().Counters["dstore_master_stepdowns_total"] != 1 {
		t.Fatal("healed leader never stepped down")
	}
}

// TestStandbyRedirectsAndMultiMasterFollows pins the NotLeader
// vocabulary: a standby answers control-plane calls with a typed
// redirect naming the leader, and the multi-master conn follows it no
// matter which master it tries first.
func TestStandbyRedirectsAndMultiMasterFollows(t *testing.T) {
	c, clock := startHACluster(t, 3, nil)
	tickAll(c, clock.t)

	standby := c.MasterByID("m-1")
	err := standby.CreateTableSplits("x", nil)
	var nl *NotLeaderError
	if !errors.As(err, &nl) {
		t.Fatalf("standby CreateTable err = %v, want NotLeaderError", err)
	}
	if nl.LeaderID != "m-0" {
		t.Fatalf("redirect names leader %q, want m-0", nl.LeaderID)
	}
	if !IsNotLeader(err) {
		t.Fatal("IsNotLeader does not match the typed redirect")
	}

	// A conn preferring the standbys still lands every call on the
	// leader by following redirects.
	mc := ConnectMasters(c.MasterByID("m-1"), c.MasterByID("m-2"), c.MasterByID("m-0"))
	if err := mc.CreateTable("t2"); err != nil {
		t.Fatalf("CreateTable through standby-first conn: %v", err)
	}
	meta, err := mc.Meta()
	if err != nil {
		t.Fatalf("Meta through standby-first conn: %v", err)
	}
	if len(meta.Tables["t2"]) == 0 {
		t.Fatal("t2 missing from META after redirected create")
	}
	if err := mc.Join(Peer{ID: c.Servers[0].ID()}); err != nil {
		t.Fatalf("rejoin through standby-first conn: %v", err)
	}
}

// TestSameIDRejoinBeforeTimeoutIsCleanReregistration is the regression
// test for the rejoin race: a region server that restarts under the
// same ID *inside* its liveness window must be treated as a new, empty
// incarnation immediately — its old regions fail over synchronously —
// instead of META routing reads at a server that no longer holds the
// data until the stale timeout fires.
func TestSameIDRejoinBeforeTimeoutIsCleanReregistration(t *testing.T) {
	c, clock := startCluster(t, 3, []string{"m"})
	cl := c.Client()
	for _, row := range []string{"a", "m", "z"} {
		if err := cl.Put(context.Background(), "t", row, "c", []byte(row)); err != nil {
			t.Fatalf("Put(%s): %v", row, err)
		}
	}
	victim := c.Master.Meta().Tables["t"][0].Primary

	// Restart the victim as a fresh, empty process under the same ID,
	// well inside the liveness window (no clock advance at all).
	c.Server(victim).Stop()
	NewRegionServer(victim, c.Reg)
	if err := c.Master.Join(Peer{ID: victim}); err != nil {
		t.Fatalf("rejoin %s: %v", victim, err)
	}

	// Every row is readable immediately: the rejoin failed the old
	// incarnation's regions over to live replicas synchronously.
	for _, row := range []string{"a", "m", "z"} {
		got, ok, err := cl.Get(context.Background(), "t", row)
		if err != nil || !ok || string(got.Columns["c"]) != row {
			t.Fatalf("Get(%s) after rejoin = %v %v %v", row, got, ok, err)
		}
	}
	for _, g := range c.Master.Meta().Tables["t"] {
		if g.Primary == victim {
			t.Fatalf("region %d still routed at the revived-empty %s", g.ID, victim)
		}
	}

	// The liveness timeout passing later must not double-process the
	// old incarnation's death: the rejoin already handled it.
	beatAll(t, c)
	clock.advance(10 * time.Second)
	if err := c.Master.Heartbeat(victim); err != nil {
		t.Fatalf("Heartbeat(%s): %v", victim, err)
	}
	for _, rs := range c.Servers {
		if rs.ID() != victim && !rs.Stopped() {
			if err := c.Master.Heartbeat(rs.ID()); err != nil {
				t.Fatalf("Heartbeat(%s): %v", rs.ID(), err)
			}
		}
	}
	if dead := c.Master.CheckLiveness(clock.t); len(dead) != 0 {
		t.Fatalf("CheckLiveness after rejoin declared %v dead", dead)
	}
	snap := c.Master.Obs().Snapshot()
	if snap.Counters["dstore_master_server_deaths_total"] != 0 {
		t.Fatalf("rejoin counted as a death: %d", snap.Counters["dstore_master_server_deaths_total"])
	}
}

// TestPromotedLeaderResumesRebalance pins that control-plane work
// interrupted by a leader crash can be re-driven by the successor: the
// new leader rebalances from the journal-recovered catalog.
func TestPromotedLeaderResumesRebalance(t *testing.T) {
	c, clock := startHACluster(t, 3, nil)
	// Pile every region onto rs-0 so the cluster is visibly unbalanced.
	for _, g := range c.Master.Meta().Tables["t"] {
		if g.Primary != "rs-0" {
			if _, err := c.Master.MoveRegion("t", g.ID, "rs-0"); err != nil {
				t.Fatalf("MoveRegion(%d): %v", g.ID, err)
			}
		}
	}
	tickAll(c, clock.t) // standbys mirror the lopsided catalog
	c.KillMaster("m-0")
	clock.advance(5 * time.Second)
	tickAll(c, clock.t)
	nl := c.Leader()
	if nl == nil {
		t.Fatal("no leader after takeover")
	}
	// Rebalance returns bytes shipped; a promotion flip ships zero, so
	// the balance itself — not the byte count — is the assertion.
	if _, err := nl.Rebalance(); err != nil {
		t.Fatalf("Rebalance on promoted leader: %v", err)
	}
	counts := map[string]int{}
	for _, g := range nl.Meta().Tables["t"] {
		counts[g.Primary]++
	}
	if len(counts) < 2 {
		t.Fatalf("primaries still piled up after rebalance: %v", counts)
	}
}
