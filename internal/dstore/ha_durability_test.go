package dstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pstorm/internal/hstore"
)

// TestHeartbeatRejoinAfterUnknownServer covers the failover-orphan: a
// region server whose Join was acked by a since-deposed leader is
// unknown to the new leader's catalog. A plain heartbeat can never fix
// that, so Beat must answer the unknown-server rejection with a fresh
// Join and then resume clean beats.
func TestHeartbeatRejoinAfterUnknownServer(t *testing.T) {
	reg := NewRegistry()
	rs := NewRegionServer("rs-0", reg)
	m := NewMaster(reg, MasterOptions{Replication: 1})
	defer m.Close()
	mc := ConnectMaster(m)

	// The master has never heard of rs-0: the direct heartbeat is the
	// non-retryable unknown-server rejection.
	if err := m.Heartbeat("rs-0"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("Heartbeat(unknown) = %v, want ErrUnknownServer", err)
	}
	if retryable(m.Heartbeat("rs-0")) {
		t.Fatal("ErrUnknownServer is retryable; the heartbeat loop would spin instead of rejoining")
	}

	// One beat round self-heals: heartbeat rejected, Join re-registers.
	rs.Beat(mc, Peer{ID: "rs-0"})
	found := false
	for _, p := range m.Meta().Servers {
		found = found || p.ID == "rs-0"
	}
	if !found {
		t.Fatalf("rs-0 not registered after Beat: %+v", m.Meta().Servers)
	}
	if n := rs.cRejoins.Value(); n != 1 {
		t.Fatalf("rejoins after first beat = %d, want 1", n)
	}

	// Once registered, beats are plain heartbeats again — no more joins.
	rs.Beat(mc, Peer{ID: "rs-0"})
	if n := rs.cRejoins.Value(); n != 1 {
		t.Fatalf("rejoins after second beat = %d, want still 1", n)
	}
}

// TestJournalPushSurvivesLeaderCrashBeforeTick is the synchronous-push
// durability property: a mutation the leader acks AFTER the standbys'
// last journal pull but BEFORE the leader dies must still surface on
// the promoted standby — the push-before-ack closed the old
// tail-to-crash loss window.
func TestJournalPushSurvivesLeaderCrashBeforeTick(t *testing.T) {
	c, clock := startHACluster(t, 3, nil)
	// Establish the electorate: the leader learns its standbys are alive
	// (push targets), the standbys mirror the history so far.
	tickAll(c, clock.t)
	if got := leaders(c); len(got) != 1 || got[0] != "m-0" {
		t.Fatalf("bootstrap leaders = %v, want [m-0]", got)
	}

	// The mutation at risk: created after the last tick, so no standby
	// ever pull-tailed it. Only the synchronous push carries it.
	if err := c.Client().CreateTable(context.Background(), "late"); err != nil {
		t.Fatalf("CreateTable(late): %v", err)
	}
	if n := c.Snapshot().Counters["dstore_master_journal_pushes_total"]; n == 0 {
		t.Fatal("no journal pushes recorded; the ack was not synchronously replicated")
	}
	if !c.KillMaster("m-0") {
		t.Fatal("KillMaster(m-0) found nothing to kill")
	}

	clock.advance(5 * time.Second)
	tickAll(c, clock.t)
	got := leaders(c)
	if len(got) != 1 {
		t.Fatalf("post-lease leaders = %v, want exactly one", got)
	}
	nl := c.MasterByID(got[0])
	if regions := nl.Meta().Tables["late"]; len(regions) == 0 {
		t.Fatalf("table created between last tail and leader crash lost on failover; new leader tables: %v", nl.Meta().Tables)
	}
}

// TestRestartedHAMasterBootsStandby pins the restart rule: an HA master
// reopening its own journal must come back as a standby (its catalog
// may be stale; a live peer may already lead at a higher epoch) and
// reach leadership only through the election path. The legacy
// single-master restart keeps booting straight into leadership.
func TestRestartedHAMasterBootsStandby(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	NewRegionServer("rs-0", reg)
	opts := MasterOptions{
		ID:          "m-0",
		Peers:       []Peer{{ID: "m-0"}, {ID: "m-1"}},
		Replication: 1,
		JournalDir:  dir,
		PeerResolver: func(p Peer) (MasterPeerConn, error) {
			return nil, errors.New("test: peer unreachable")
		},
	}
	m, err := OpenMaster(reg, opts)
	if err != nil {
		t.Fatalf("OpenMaster: %v", err)
	}
	// A fresh HA bootstrap (no journal to recover) leads immediately.
	if m.Role() != roleLeader {
		t.Fatalf("fresh bootstrap role = %s, want leader", m.Role())
	}
	if err := m.Join(Peer{ID: "rs-0"}); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if err := m.CreateTable("t"); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	m.Close()

	// Same options, journal now present: the restart must NOT resume the
	// leader role its dead incarnation held.
	m2, err := OpenMaster(reg, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if m2.Role() != roleStandby {
		t.Fatalf("restarted HA master role = %s, want standby", m2.Role())
	}
	// The recovered catalog still serves as the shadow view.
	if len(m2.Meta().Tables["t"]) == 0 {
		t.Fatal("restarted standby lost the recovered catalog")
	}

	// Control: a single-master (non-HA) restart has no electorate to
	// defer to and boots leading, as it always has.
	soloDir := t.TempDir()
	solo, err := OpenMaster(reg, MasterOptions{Replication: 1, JournalDir: soloDir})
	if err != nil {
		t.Fatalf("OpenMaster(solo): %v", err)
	}
	if err := solo.Join(Peer{ID: "rs-0"}); err != nil {
		t.Fatalf("solo Join: %v", err)
	}
	solo.Close()
	solo2, err := OpenMaster(reg, MasterOptions{Replication: 1, JournalDir: soloDir})
	if err != nil {
		t.Fatalf("reopen solo: %v", err)
	}
	defer solo2.Close()
	if solo2.Role() != roleLeader {
		t.Fatalf("restarted single master role = %s, want leader", solo2.Role())
	}
}

// TestColdRestartedClusterElectsOnFirstTick: when every master restarts
// (all boot as standbys now), the fullView fast path must elect a
// leader on the first tick that reaches the whole electorate — not
// leave the control plane idle for a full election grace.
func TestColdRestartedClusterElectsOnFirstTick(t *testing.T) {
	clock := newTestClock()
	reg := NewRegistry()
	NewRegionServer("rs-0", reg)
	dirs := map[string]string{"m-0": t.TempDir(), "m-1": t.TempDir()}
	peers := []Peer{{ID: "m-0"}, {ID: "m-1"}}

	var mu sync.Mutex
	live := map[string]*Master{}
	open := func(id string, standby bool) *Master {
		m, err := OpenMaster(reg, MasterOptions{
			ID:          id,
			Peers:       peers,
			Replication: 1,
			Standby:     standby,
			Now:         clock.now,
			JournalDir:  dirs[id],
			PeerResolver: func(p Peer) (MasterPeerConn, error) {
				mu.Lock()
				defer mu.Unlock()
				return ConnectMasterPeer(live[p.ID]), nil
			},
		})
		if err != nil {
			t.Fatalf("OpenMaster(%s): %v", id, err)
		}
		mu.Lock()
		live[id] = m
		mu.Unlock()
		return m
	}

	// First incarnation: m-0 bootstraps as leader, m-1 as its standby.
	m0, m1 := open("m-0", false), open("m-1", true)
	if err := m0.Join(Peer{ID: "rs-0"}); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if err := m0.CreateTable("t"); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	m0.ElectionTick(clock.t)
	m1.ElectionTick(clock.t)
	m0.Close()
	m1.Close()

	// Whole-cluster restart: both recover journals, both boot standby.
	n0, n1 := open("m-0", false), open("m-1", false)
	defer n0.Close()
	defer n1.Close()
	if n0.Role() != roleStandby || n1.Role() != roleStandby {
		t.Fatalf("restart roles = %s/%s, want standby/standby", n0.Role(), n1.Role())
	}

	// One tick round at the restart instant — no lease wait, no clock
	// advance — and the full-view fast path seats exactly one leader.
	n0.ElectionTick(clock.t)
	n1.ElectionTick(clock.t)
	var elected []*Master
	for _, m := range []*Master{n0, n1} {
		if m.IsLeader() {
			elected = append(elected, m)
		}
	}
	if len(elected) != 1 {
		t.Fatalf("leaders after first restart tick = %d, want exactly 1", len(elected))
	}
	if len(elected[0].Meta().Tables["t"]) == 0 {
		t.Fatal("fast-elected leader lost the recovered catalog")
	}
}

// failRenameFS fails Rename while armed — the step that commits a
// checkpoint rewrite — leaving every other operation real.
type failRenameFS struct {
	hstore.FS
	fail atomic.Bool
}

func (f *failRenameFS) Rename(oldpath, newpath string) error {
	if f.fail.Load() {
		return errors.New("test: injected rename failure")
	}
	return f.FS.Rename(oldpath, newpath)
}

// TestJournalCompactionFallbackOnRenameFailure: a checkpoint rewrite
// that cannot commit its rename must leave the on-disk journal exactly
// as it was and fall back to a plain append — an acked mutation never
// rides on the rewrite landing. Once the filesystem heals, the next
// append compacts.
func TestJournalCompactionFallbackOnRenameFailure(t *testing.T) {
	dir := t.TempDir()
	fsys := &failRenameFS{FS: hstore.OSFS}
	fsys.fail.Store(true)
	reg := NewRegistry()
	m, err := OpenMaster(reg, MasterOptions{Replication: 2, DefaultSplits: []string{"m"}, JournalDir: dir, FS: fsys})
	if err != nil {
		t.Fatalf("OpenMaster: %v", err)
	}
	defer m.Close()
	for _, id := range []string{"rs-0", "rs-1"} {
		NewRegionServer(id, reg)
		if err := m.Join(Peer{ID: id}); err != nil {
			t.Fatalf("Join: %v", err)
		}
	}
	if err := m.CreateTable("t"); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	g := m.Meta().Tables["t"][0]
	primary, follower := g.Primary, g.Followers[0]
	move := func(i int) {
		to := follower
		if i%2 == 1 {
			to = primary
		}
		if _, err := m.MoveRegion("t", g.ID, to); err != nil {
			t.Fatalf("MoveRegion %d: %v", i, err)
		}
	}
	// Push past the compaction threshold and keep appending: every
	// over-threshold append attempts (and fails) a rewrite.
	i := 0
	for ; m.journal.size() <= journalCheckpointBytes+4096; i++ {
		if i > 5000 {
			t.Fatal("journal never crossed the compaction threshold")
		}
		move(i)
	}
	if m.journal.gen != 0 {
		t.Fatalf("journal gen = %d under failing renames, want 0 (no compaction committed)", m.journal.gen)
	}
	raw, err := os.ReadFile(filepath.Join(dir, metaJournalFile))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	st, _, cleanLen, corrupt := replayMetaJournal(raw)
	if corrupt || cleanLen != int64(len(raw)) || st == nil {
		t.Fatalf("journal dirty after rewrite failures: corrupt=%v clean=%d/%d", corrupt, cleanLen, len(raw))
	}
	if st.Epoch != m.Epoch() {
		t.Fatalf("journal replays to epoch %d, live is %d: an acked mutation was lost", st.Epoch, m.Epoch())
	}

	// Heal the filesystem: the very next append retries the rewrite.
	fsys.fail.Store(false)
	move(i)
	if m.journal.gen != 1 {
		t.Fatalf("journal gen = %d after heal, want 1 (compaction retried)", m.journal.gen)
	}
	raw, err = os.ReadFile(filepath.Join(dir, metaJournalFile))
	if err != nil {
		t.Fatalf("reread journal: %v", err)
	}
	if int64(len(raw)) > journalCheckpointBytes/4 {
		t.Fatalf("journal not compacted after heal: %d bytes", len(raw))
	}
	st, _, cleanLen, corrupt = replayMetaJournal(raw)
	if corrupt || cleanLen != int64(len(raw)) || st == nil || st.Epoch != m.Epoch() {
		t.Fatalf("compacted journal wrong: corrupt=%v clean=%d/%d", corrupt, cleanLen, len(raw))
	}
}

// syncCountFS counts Sync calls on every append handle it opens.
type syncCountFS struct {
	hstore.FS
	syncs atomic.Int64
}

func (f *syncCountFS) OpenAppend(path string) (hstore.AppendFile, error) {
	af, err := f.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &syncCountFile{AppendFile: af, n: &f.syncs}, nil
}

type syncCountFile struct {
	hstore.AppendFile
	n *atomic.Int64
}

func (f *syncCountFile) Sync() error {
	f.n.Add(1)
	return f.AppendFile.Sync()
}

// TestJournalAppendsFsync pins the durability contract of an acked
// control-plane mutation: every journal append syncs to stable storage
// before the mutation returns, so a power cut — not just a process
// crash — cannot take back an ack.
func TestJournalAppendsFsync(t *testing.T) {
	fsys := &syncCountFS{FS: hstore.OSFS}
	reg := NewRegistry()
	m, err := OpenMaster(reg, MasterOptions{Replication: 1, JournalDir: t.TempDir(), FS: fsys})
	if err != nil {
		t.Fatalf("OpenMaster: %v", err)
	}
	defer m.Close()
	NewRegionServer("rs-0", reg)

	for i, mutate := range []func() error{
		func() error { return m.Join(Peer{ID: "rs-0"}) },
		func() error { return m.CreateTable("t1") },
		func() error { return m.CreateTable("t2") },
	} {
		before := fsys.syncs.Load()
		if err := mutate(); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if after := fsys.syncs.Load(); after <= before {
			t.Fatalf("mutation %d acked without a journal fsync (syncs %d -> %d)", i, before, after)
		}
	}
}
