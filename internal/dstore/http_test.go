package dstore

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"pstorm/internal/hstore"
)

// TestHTTPCluster runs the whole control and data plane over real HTTP:
// master and region servers mounted on httptest servers, joined by
// address, written and read through a routing client that resolves
// every peer remotely — the pstormd deployment shape.
func TestHTTPCluster(t *testing.T) {
	m := NewMaster(NewRegistry(), MasterOptions{
		Replication:   2,
		DefaultSplits: []string{"m"},
	})
	masterSrv := httptest.NewServer(MasterHandler(m))
	defer masterSrv.Close()

	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("hrs-%d", i)
		rs := NewRegionServer(id, NewRegistry())
		srv := httptest.NewServer(RegionServerHandler(rs))
		defer srv.Close()
		mc := DialMaster(masterSrv.URL, time.Second)
		if err := mc.Join(Peer{ID: id, Addr: srv.URL}); err != nil {
			t.Fatalf("join over HTTP: %v", err)
		}
	}

	cl := NewClient(DialMaster(masterSrv.URL, time.Second), NewRegistry())
	cl.RetryBase = time.Microsecond
	if err := cl.CreateTable(context.Background(), "t"); err != nil {
		t.Fatalf("CreateTable over HTTP: %v", err)
	}

	var rows []hstore.Row
	for i := 0; i < 20; i++ {
		rows = append(rows, hstore.Row{
			Key:     fmt.Sprintf("k%02d", i),
			Columns: map[string][]byte{"c": []byte(fmt.Sprintf("v%d", i))},
		})
	}
	if err := cl.BatchPut(context.Background(), "t", rows); err != nil {
		t.Fatalf("BatchPut over HTTP: %v", err)
	}
	for i := 0; i < 20; i++ {
		r, ok, err := cl.Get(context.Background(), "t", fmt.Sprintf("k%02d", i))
		if err != nil || !ok {
			t.Fatalf("Get(k%02d) over HTTP: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("v%d", i); string(r.Columns["c"]) != want {
			t.Fatalf("k%02d = %q, want %q", i, r.Columns["c"], want)
		}
	}

	// Filter pushdown survives the wire.
	got, err := cl.Scan(context.Background(), "t", "", "", &hstore.PrefixFilter{Prefix: "k0"}, 0)
	if err != nil {
		t.Fatalf("filtered Scan over HTTP: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("prefix scan returned %d rows, want 10", len(got))
	}

	// A NotServing on the remote side maps through 409 back to a typed
	// error: fence a region, hit it directly, and check the client's
	// retry loop also recovers once the region is unfenced.
	meta, err := cl.Meta()
	if err != nil {
		t.Fatal(err)
	}
	g := meta.Tables["t"][0]
	var primary Peer
	for _, p := range meta.Servers {
		if p.ID == g.Primary {
			primary = p
		}
	}
	conn := newHTTPServerConn(primary.Addr, time.Second)
	if err := conn.SetServing("t", g.ID, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.Get(context.Background(), "t", "k00"); !hstore.IsNotServing(err) {
		t.Fatalf("fenced remote Get returned %v, want NotServing", err)
	}
	if err := conn.SetServing("t", g.ID, true, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cl.Get(context.Background(), "t", "k00"); err != nil || !ok {
		t.Fatalf("Get after unfence: ok=%v err=%v", ok, err)
	}

	// DeleteRow and stats round-trip over the wire too.
	if err := cl.DeleteRow(context.Background(), "t", "k00"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cl.Get(context.Background(), "t", "k00"); ok {
		t.Fatal("row survived remote delete")
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsReturned == 0 {
		t.Fatal("stats over HTTP returned nothing")
	}
	if err := cl.ResetStats(); err != nil {
		t.Fatal(err)
	}
	st, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsReturned != 0 {
		t.Fatalf("stats not reset over HTTP: %+v", st)
	}
}
