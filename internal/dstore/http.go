package dstore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"pstorm/internal/hstore"
	"pstorm/internal/httperr"
)

func queryEscape(s string) string { return url.QueryEscape(s) }

// HTTP wire protocol. Every endpoint is JSON over POST/GET under /d/.
// NotServing maps to 409 (the client re-routes), a stopped server to
// 503, anything else to 400 — so retryability survives the wire.

type wireRow struct {
	Key     string            `json:"key"`
	Columns map[string][]byte `json:"columns"`
}

func rowToWire(r hstore.Row) wireRow   { return wireRow{Key: r.Key, Columns: r.Columns} }
func rowFromWire(w wireRow) hstore.Row { return hstore.Row{Key: w.Key, Columns: w.Columns} }
func rowsToWire(rs []hstore.Row) []wireRow {
	out := make([]wireRow, len(rs))
	for i, r := range rs {
		out[i] = rowToWire(r)
	}
	return out
}
func rowsFromWire(ws []wireRow) []hstore.Row {
	out := make([]hstore.Row, len(ws))
	for i, w := range ws {
		out[i] = rowFromWire(w)
	}
	return out
}

type putWire struct {
	Table  string `json:"table"`
	Row    string `json:"row"`
	Column string `json:"column"`
	Value  []byte `json:"value"`
}

type batchWire struct {
	Table string    `json:"table"`
	Rows  []wireRow `json:"rows"`
}

type batchGetWire struct {
	Table string   `json:"table"`
	Rows  []string `json:"rows"`
}

type batchGetRespWire struct {
	Found []bool    `json:"found"`
	Rows  []wireRow `json:"rows"`
}

type applyWire struct {
	Table string        `json:"table"`
	Cells []hstore.Cell `json:"cells"`
}

type scanWire struct {
	Table  string          `json:"table"`
	Region int             `json:"region"`
	Start  string          `json:"start"`
	End    string          `json:"end"`
	Filter json.RawMessage `json:"filter,omitempty"`
	Limit  int             `json:"limit"`
}

type installWire struct {
	Snapshot    *hstore.RegionSnapshot `json:"snapshot"`
	Serving     bool                   `json:"serving"`
	MasterEpoch int64                  `json:"master_epoch,omitempty"`
}

type followersWire struct {
	Table       string `json:"table"`
	Region      int    `json:"region"`
	Peers       []Peer `json:"peers"`
	MasterEpoch int64  `json:"master_epoch,omitempty"`
}

func writeHTTPErr(w http.ResponseWriter, err error) {
	status, code := http.StatusBadRequest, httperr.CodeBadRequest
	var nl *NotLeaderError
	switch {
	case hstore.IsNotServing(err):
		status, code = http.StatusConflict, httperr.CodeNotServing
	case errors.As(err, &nl):
		// 421: this server cannot answer, but another can. The message
		// is the redirect hint — an address when the standby knows one
		// (HTTP deployments), else the leader's ID.
		hint := nl.LeaderAddr
		if hint == "" {
			hint = nl.LeaderID
		}
		httperr.Write(w, http.StatusMisdirectedRequest, httperr.CodeNotLeader, hint, false)
		return
	case errors.Is(err, ErrStaleMaster):
		status, code = http.StatusMisdirectedRequest, httperr.CodeStaleMaster
	case errors.Is(err, ErrUnknownServer):
		status, code = http.StatusNotFound, httperr.CodeUnknownServer
	case retryable(err):
		status, code = http.StatusServiceUnavailable, httperr.CodeUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The server aborted because the caller's budget ran out (or the
		// caller hung up). Not retryable: the client is out of time.
		status, code = http.StatusGatewayTimeout, httperr.CodeDeadline
	}
	httperr.Write(w, status, code, err.Error(), false)
}

func writeJSONBody(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func decodeBody(r *http.Request, v interface{}) error {
	return json.NewDecoder(r.Body).Decode(v)
}

// RegionServerHandler exposes a region server over HTTP.
func RegionServerHandler(rs *RegionServer) http.Handler {
	mux := http.NewServeMux()
	ok := func(w http.ResponseWriter, err error) {
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, map[string]string{"status": "ok"})
	}
	mux.HandleFunc("/d/put", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := httperr.ContextFromRequest(r)
		defer cancel()
		var req putWire
		if err := decodeBody(r, &req); err != nil {
			writeHTTPErr(w, err)
			return
		}
		ok(w, rs.Put(ctx, req.Table, req.Row, req.Column, req.Value))
	})
	mux.HandleFunc("/d/batchput", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := httperr.ContextFromRequest(r)
		defer cancel()
		var req batchWire
		if err := decodeBody(r, &req); err != nil {
			writeHTTPErr(w, err)
			return
		}
		ok(w, rs.BatchPut(ctx, req.Table, rowsFromWire(req.Rows)))
	})
	mux.HandleFunc("/d/apply", func(w http.ResponseWriter, r *http.Request) {
		var req applyWire
		if err := decodeBody(r, &req); err != nil {
			writeHTTPErr(w, err)
			return
		}
		ok(w, rs.Apply(req.Table, req.Cells))
	})
	mux.HandleFunc("/d/get", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := httperr.ContextFromRequest(r)
		defer cancel()
		row, found, err := rs.Get(ctx, r.URL.Query().Get("table"), r.URL.Query().Get("row"))
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, map[string]interface{}{"found": found, "row": rowToWire(row)})
	})
	mux.HandleFunc("/d/fget", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := httperr.ContextFromRequest(r)
		defer cancel()
		row, found, err := rs.FollowerGet(ctx, r.URL.Query().Get("table"), r.URL.Query().Get("row"))
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, map[string]interface{}{"found": found, "row": rowToWire(row)})
	})
	mux.HandleFunc("/d/health", func(w http.ResponseWriter, r *http.Request) {
		h, err := rs.Health()
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, h)
	})
	mux.HandleFunc("/d/batchget", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := httperr.ContextFromRequest(r)
		defer cancel()
		var req batchGetWire
		if err := decodeBody(r, &req); err != nil {
			writeHTTPErr(w, err)
			return
		}
		rows, found, err := rs.BatchGet(ctx, req.Table, req.Rows)
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, batchGetRespWire{Found: found, Rows: rowsToWire(rows)})
	})
	mux.HandleFunc("/d/scan", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := httperr.ContextFromRequest(r)
		defer cancel()
		var req scanWire
		if err := decodeBody(r, &req); err != nil {
			writeHTTPErr(w, err)
			return
		}
		var f hstore.Filter
		if len(req.Filter) > 0 {
			var err error
			if f, err = hstore.DecodeFilter(req.Filter); err != nil {
				writeHTTPErr(w, err)
				return
			}
		}
		rows, err := rs.Scan(ctx, req.Table, req.Region, req.Start, req.End, f, req.Limit)
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, rowsToWire(rows))
	})
	mux.HandleFunc("/d/fscan", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := httperr.ContextFromRequest(r)
		defer cancel()
		var req scanWire
		if err := decodeBody(r, &req); err != nil {
			writeHTTPErr(w, err)
			return
		}
		var f hstore.Filter
		if len(req.Filter) > 0 {
			var err error
			if f, err = hstore.DecodeFilter(req.Filter); err != nil {
				writeHTTPErr(w, err)
				return
			}
		}
		rows, err := rs.FollowerScan(ctx, req.Table, req.Region, req.Start, req.End, f, req.Limit)
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, rowsToWire(rows))
	})
	mux.HandleFunc("/d/deleterow", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := httperr.ContextFromRequest(r)
		defer cancel()
		ok(w, rs.DeleteRow(ctx, r.URL.Query().Get("table"), r.URL.Query().Get("row")))
	})
	mux.HandleFunc("/d/flush", func(w http.ResponseWriter, r *http.Request) {
		ok(w, rs.Flush(r.URL.Query().Get("table")))
	})
	mux.HandleFunc("/d/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("reset") == "1" {
			if err := rs.ResetStats(); err != nil {
				writeHTTPErr(w, err)
				return
			}
		}
		st, err := rs.Stats()
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, st)
	})
	mux.HandleFunc("/d/install", func(w http.ResponseWriter, r *http.Request) {
		var req installWire
		if err := decodeBody(r, &req); err != nil {
			writeHTTPErr(w, err)
			return
		}
		ok(w, rs.Install(req.Snapshot, req.Serving, req.MasterEpoch))
	})
	mux.HandleFunc("/d/export", func(w http.ResponseWriter, r *http.Request) {
		region, _ := strconv.Atoi(r.URL.Query().Get("region"))
		snap, err := rs.Export(r.URL.Query().Get("table"), region)
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, snap)
	})
	mux.HandleFunc("/d/drop", func(w http.ResponseWriter, r *http.Request) {
		region, _ := strconv.Atoi(r.URL.Query().Get("region"))
		mepoch, _ := strconv.ParseInt(r.URL.Query().Get("mepoch"), 10, 64)
		ok(w, rs.Drop(r.URL.Query().Get("table"), region, mepoch))
	})
	mux.HandleFunc("/d/serving", func(w http.ResponseWriter, r *http.Request) {
		region, _ := strconv.Atoi(r.URL.Query().Get("region"))
		serving := r.URL.Query().Get("serving") == "true"
		mepoch, _ := strconv.ParseInt(r.URL.Query().Get("mepoch"), 10, 64)
		ok(w, rs.SetServing(r.URL.Query().Get("table"), region, serving, mepoch))
	})
	mux.HandleFunc("/d/followers", func(w http.ResponseWriter, r *http.Request) {
		var req followersWire
		if err := decodeBody(r, &req); err != nil {
			writeHTTPErr(w, err)
			return
		}
		ok(w, rs.SetFollowers(req.Table, req.Region, req.Peers, req.MasterEpoch))
	})
	return mux
}

// MasterHandler exposes a master over HTTP.
func MasterHandler(m *Master) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/d/join", func(w http.ResponseWriter, r *http.Request) {
		var p Peer
		if err := decodeBody(r, &p); err != nil {
			writeHTTPErr(w, err)
			return
		}
		if err := m.Join(p); err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/d/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Heartbeat(r.URL.Query().Get("id")); err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/d/meta", func(w http.ResponseWriter, r *http.Request) {
		if m.Stopped() {
			writeHTTPErr(w, errStopped)
			return
		}
		writeJSONBody(w, m.Meta())
	})
	mux.HandleFunc("/d/createtable", func(w http.ResponseWriter, r *http.Request) {
		if err := m.CreateTable(r.URL.Query().Get("name")); err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/d/move", func(w http.ResponseWriter, r *http.Request) {
		region, _ := strconv.Atoi(r.URL.Query().Get("region"))
		n, err := m.MoveRegion(r.URL.Query().Get("table"), region, r.URL.Query().Get("to"))
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, map[string]int64{"bytes_moved": n})
	})
	mux.HandleFunc("/d/status", func(w http.ResponseWriter, r *http.Request) {
		if m.Stopped() {
			writeHTTPErr(w, errStopped)
			return
		}
		writeJSONBody(w, m.Status())
	})
	// Master-to-master endpoints: lease pings, journal tailing and
	// pushing, and the operator HA view.
	mux.HandleFunc("/m/ping", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Ping(r.URL.Query().Get("from"))
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, st)
	})
	mux.HandleFunc("/m/journal", func(w http.ResponseWriter, r *http.Request) {
		gen, _ := strconv.ParseInt(r.URL.Query().Get("gen"), 10, 64)
		off, _ := strconv.ParseInt(r.URL.Query().Get("off"), 10, 64)
		t, err := m.JournalTailSince(gen, off)
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, t)
	})
	mux.HandleFunc("/m/journal/push", func(w http.ResponseWriter, r *http.Request) {
		var t JournalTail
		if err := decodeBody(r, &t); err != nil {
			writeHTTPErr(w, err)
			return
		}
		ack, err := m.AcceptJournalPush(r.URL.Query().Get("from"), t)
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, ack)
	})
	mux.HandleFunc("/m/status", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.HAStatus()
		if err != nil {
			writeHTTPErr(w, err)
			return
		}
		writeJSONBody(w, st)
	})
	return mux
}

// httpJSON is the shared request helper: POST body (or GET when body is
// nil), decode into out, map status codes back to typed errors.
type httpJSON struct {
	base string
	hc   *http.Client
}

func newHTTPJSON(base string, timeout time.Duration) *httpJSON {
	if timeout <= 0 {
		timeout = hstore.DefaultDialTimeout
	}
	return &httpJSON{base: base, hc: &http.Client{Timeout: timeout}}
}

// detachedCtx roots control-plane RPCs (join, heartbeats, catalog
// moves, serving fences): they are owned by the master's and region
// servers' own lifecycles, not by any inbound request.
func detachedCtx() context.Context {
	return context.Background() //pstorm:allow ctxcheck control-plane RPCs are owned by the master/server lifecycle, not an inbound request
}

func (h *httpJSON) call(ctx context.Context, path string, body interface{}, out interface{}) error {
	var req *http.Request
	var err error
	if body != nil {
		raw, merr := json.Marshal(body)
		if merr != nil {
			return merr
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, h.base+path, bytes.NewReader(raw))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, h.base+path, nil)
	}
	if err != nil {
		return fmt.Errorf("%w: %v", errTransport, err)
	}
	httperr.SetDeadlineHeader(req.Header, ctx)
	resp, err := h.hc.Do(req)
	if err != nil {
		// A dead caller is not a dead transport: surface the context
		// error so the retry loop stops instead of spinning on a
		// "retryable" failure the caller will never see resolved.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("%w: %v", errTransport, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("%w: %v", errTransport, err)
	}
	// Error bodies are the shared JSON envelope; bare text (an old peer,
	// a proxy) still round-trips as the message.
	msg := string(bytes.TrimSpace(payload))
	code := ""
	if e, ok := httperr.Parse(payload); ok {
		msg, code = e.Message, e.Code
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if out != nil {
			return json.Unmarshal(payload, out)
		}
		return nil
	case http.StatusConflict:
		return &hstore.NotServingError{Table: "remote", Row: msg}
	case http.StatusMisdirectedRequest:
		if code == httperr.CodeStaleMaster {
			return fmt.Errorf("%w: %s", ErrStaleMaster, msg)
		}
		// not_leader: the message is the redirect hint — an address if it
		// looks like a URL, else a master ID.
		nl := &NotLeaderError{}
		if strings.Contains(msg, "://") {
			nl.LeaderAddr = msg
		} else {
			nl.LeaderID = msg
		}
		return nl
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", errStopped, msg)
	case http.StatusGatewayTimeout:
		return fmt.Errorf("dstore: %s: %s: %w", path, msg, context.DeadlineExceeded)
	default:
		if code == httperr.CodeUnknownServer {
			return fmt.Errorf("%w: %s", ErrUnknownServer, msg)
		}
		return fmt.Errorf("dstore: %s: %s", path, msg)
	}
}

// httpServerConn speaks to a remote region server.
type httpServerConn struct{ h *httpJSON }

func newHTTPServerConn(base string, timeout time.Duration) *httpServerConn {
	return &httpServerConn{h: newHTTPJSON(base, timeout)}
}

func (c *httpServerConn) Put(ctx context.Context, table, row, column string, value []byte) error {
	return c.h.call(ctx, "/d/put", putWire{Table: table, Row: row, Column: column, Value: value}, nil)
}

func (c *httpServerConn) BatchPut(ctx context.Context, table string, rows []hstore.Row) error {
	return c.h.call(ctx, "/d/batchput", batchWire{Table: table, Rows: rowsToWire(rows)}, nil)
}

func (c *httpServerConn) Apply(table string, cells []hstore.Cell) error {
	return c.h.call(detachedCtx(), "/d/apply", applyWire{Table: table, Cells: cells}, nil)
}

func (c *httpServerConn) Get(ctx context.Context, table, row string) (hstore.Row, bool, error) {
	var resp struct {
		Found bool    `json:"found"`
		Row   wireRow `json:"row"`
	}
	if err := c.h.call(ctx, "/d/get?table="+queryEscape(table)+"&row="+queryEscape(row), nil, &resp); err != nil {
		return hstore.Row{}, false, err
	}
	return rowFromWire(resp.Row), resp.Found, nil
}

func (c *httpServerConn) FollowerGet(ctx context.Context, table, row string) (hstore.Row, bool, error) {
	var resp struct {
		Found bool    `json:"found"`
		Row   wireRow `json:"row"`
	}
	if err := c.h.call(ctx, "/d/fget?table="+queryEscape(table)+"&row="+queryEscape(row), nil, &resp); err != nil {
		return hstore.Row{}, false, err
	}
	return rowFromWire(resp.Row), resp.Found, nil
}

func (c *httpServerConn) Health() (HealthReport, error) {
	var h HealthReport
	err := c.h.call(detachedCtx(), "/d/health", nil, &h)
	return h, err
}

func (c *httpServerConn) BatchGet(ctx context.Context, table string, rows []string) ([]hstore.Row, []bool, error) {
	var resp batchGetRespWire
	if err := c.h.call(ctx, "/d/batchget", batchGetWire{Table: table, Rows: rows}, &resp); err != nil {
		return nil, nil, err
	}
	return rowsFromWire(resp.Rows), resp.Found, nil
}

func (c *httpServerConn) Scan(ctx context.Context, table string, regionID int, start, end string, f hstore.Filter, limit int) ([]hstore.Row, error) {
	req := scanWire{Table: table, Region: regionID, Start: start, End: end, Limit: limit}
	if f != nil {
		wire, err := hstore.EncodeFilter(f)
		if err != nil {
			return nil, err
		}
		req.Filter = wire
	}
	var ws []wireRow
	if err := c.h.call(ctx, "/d/scan", req, &ws); err != nil {
		return nil, err
	}
	return rowsFromWire(ws), nil
}

func (c *httpServerConn) FollowerScan(ctx context.Context, table string, regionID int, start, end string, f hstore.Filter, limit int) ([]hstore.Row, error) {
	req := scanWire{Table: table, Region: regionID, Start: start, End: end, Limit: limit}
	if f != nil {
		wire, err := hstore.EncodeFilter(f)
		if err != nil {
			return nil, err
		}
		req.Filter = wire
	}
	var ws []wireRow
	if err := c.h.call(ctx, "/d/fscan", req, &ws); err != nil {
		return nil, err
	}
	return rowsFromWire(ws), nil
}

func (c *httpServerConn) DeleteRow(ctx context.Context, table, row string) error {
	return c.h.call(ctx, "/d/deleterow?table="+queryEscape(table)+"&row="+queryEscape(row), nil, nil)
}

func (c *httpServerConn) Flush(table string) error {
	return c.h.call(detachedCtx(), "/d/flush?table="+queryEscape(table), nil, nil)
}

func (c *httpServerConn) Stats() (hstore.TransferStats, error) {
	var st hstore.TransferStats
	err := c.h.call(detachedCtx(), "/d/stats", nil, &st)
	return st, err
}

func (c *httpServerConn) ResetStats() error {
	var st hstore.TransferStats
	return c.h.call(detachedCtx(), "/d/stats?reset=1", nil, &st)
}

func (c *httpServerConn) Install(snap *hstore.RegionSnapshot, serving bool, masterEpoch int64) error {
	return c.h.call(detachedCtx(), "/d/install", installWire{Snapshot: snap, Serving: serving, MasterEpoch: masterEpoch}, nil)
}

func (c *httpServerConn) Export(table string, regionID int) (*hstore.RegionSnapshot, error) {
	var snap hstore.RegionSnapshot
	err := c.h.call(detachedCtx(), fmt.Sprintf("/d/export?table=%s&region=%d", queryEscape(table), regionID), nil, &snap)
	if err != nil {
		return nil, err
	}
	return &snap, nil
}

func (c *httpServerConn) Drop(table string, regionID int, masterEpoch int64) error {
	return c.h.call(detachedCtx(), fmt.Sprintf("/d/drop?table=%s&region=%d&mepoch=%d", queryEscape(table), regionID, masterEpoch), nil, nil)
}

func (c *httpServerConn) SetServing(table string, regionID int, serving bool, masterEpoch int64) error {
	return c.h.call(detachedCtx(), fmt.Sprintf("/d/serving?table=%s&region=%d&serving=%t&mepoch=%d", queryEscape(table), regionID, serving, masterEpoch), nil, nil)
}

func (c *httpServerConn) SetFollowers(table string, regionID int, followers []Peer, masterEpoch int64) error {
	return c.h.call(detachedCtx(), "/d/followers", followersWire{Table: table, Region: regionID, Peers: followers, MasterEpoch: masterEpoch}, nil)
}

// httpMasterConn speaks to a remote master.
type httpMasterConn struct{ h *httpJSON }

// DialMaster returns a MasterConn speaking HTTP to a pstormd master.
// timeout 0 uses hstore.DefaultDialTimeout.
func DialMaster(base string, timeout time.Duration) MasterConn {
	return &httpMasterConn{h: newHTTPJSON(base, timeout)}
}

func (c *httpMasterConn) Join(p Peer) error { return c.h.call(detachedCtx(), "/d/join", p, nil) }

func (c *httpMasterConn) Heartbeat(id string) error {
	return c.h.call(detachedCtx(), "/d/heartbeat?id="+queryEscape(id), nil, nil)
}

func (c *httpMasterConn) Meta() (Meta, error) {
	var m Meta
	err := c.h.call(detachedCtx(), "/d/meta", nil, &m)
	return m, err
}

func (c *httpMasterConn) CreateTable(table string) error {
	return c.h.call(detachedCtx(), "/d/createtable?name="+queryEscape(table), nil, nil)
}

// httpPeerConn speaks master-to-master HTTP: lease pings, journal
// tailing, and journal pushing against a peer's /m/ endpoints.
type httpPeerConn struct{ h *httpJSON }

// DialMasterPeer returns a MasterPeerConn speaking HTTP to a pstormd
// master. timeout 0 uses hstore.DefaultDialTimeout.
func DialMasterPeer(base string, timeout time.Duration) MasterPeerConn {
	return &httpPeerConn{h: newHTTPJSON(base, timeout)}
}

func (c *httpPeerConn) Ping(from string) (PeerStatus, error) {
	var st PeerStatus
	err := c.h.call(detachedCtx(), "/m/ping?from="+queryEscape(from), nil, &st)
	return st, err
}

func (c *httpPeerConn) JournalTail(gen, off int64) (JournalTail, error) {
	var t JournalTail
	err := c.h.call(detachedCtx(), fmt.Sprintf("/m/journal?gen=%d&off=%d", gen, off), nil, &t)
	return t, err
}

func (c *httpPeerConn) JournalPush(from string, t JournalTail) (JournalPushAck, error) {
	var ack JournalPushAck
	err := c.h.call(detachedCtx(), "/m/journal/push?from="+queryEscape(from), t, &ack)
	return ack, err
}
