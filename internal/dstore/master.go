package dstore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pstorm/internal/hstore"
	"pstorm/internal/obs"
)

// MasterOptions tune the master.
type MasterOptions struct {
	// HeartbeatTimeout is how long a server may go silent before it is
	// declared dead and failed over (default 2s).
	HeartbeatTimeout time.Duration
	// Replication is the copies-per-region target, primary included
	// (default 2, capped at the number of live servers).
	Replication int
	// DefaultSplits are the region boundary keys used when CreateTable
	// is called without explicit splits (nil: one region per table).
	DefaultSplits []string
	// Now is the clock (default time.Now); tests inject their own.
	Now func() time.Time

	// ID names this master among its peers (default "m-0"). Required to
	// be unique per master when Peers is set.
	ID string
	// Peers is the full master electorate, this master included. More
	// than one peer enables HA: lease election, journal tailing, and
	// epoch fencing of control RPCs. Empty or single-entry keeps the
	// legacy single-master behavior (unfenced, always leader).
	Peers []Peer
	// Standby starts this master as a standby that tails the leader's
	// journal and only serves reads; it promotes itself when the
	// leader's lease lapses. Ignored without Peers.
	Standby bool
	// LeaseDuration is how long a leader may go unreachable before
	// standbys may promote (default 2×HeartbeatTimeout).
	LeaseDuration time.Duration
	// Seed feeds the deterministic election tie-break ranks.
	Seed int64
	// JournalDir, when set, persists the META journal there so a
	// restarted master recovers its catalog (use OpenMaster to surface
	// open/replay errors).
	JournalDir string
	// FS is the journal's filesystem (default hstore.OSFS); fault tests
	// inject their own.
	FS hstore.FS
	// PeerResolver resolves master peers to conns. Default: HTTP by
	// Peer.Addr. Local clusters inject direct conns; chaos wraps them.
	PeerResolver func(Peer) (MasterPeerConn, error)
}

func (o MasterOptions) heartbeatTimeout() time.Duration {
	if o.HeartbeatTimeout > 0 {
		return o.HeartbeatTimeout
	}
	return 2 * time.Second
}

func (o MasterOptions) id() string {
	if o.ID != "" {
		return o.ID
	}
	return "m-0"
}

func (m *Master) leaseDuration() time.Duration {
	if m.opts.LeaseDuration > 0 {
		return m.opts.LeaseDuration
	}
	return 2 * m.opts.heartbeatTimeout()
}

func (o MasterOptions) replication() int {
	if o.Replication > 0 {
		return o.Replication
	}
	return 2
}

type member struct {
	peer     Peer
	conn     ServerConn
	lastBeat time.Time
	alive    bool
}

// Master owns the META catalog and region→server assignment: liveness
// via heartbeats, follower promotion on primary death, re-replication,
// and region moves. With MasterOptions.Peers set it is one voice in an
// HA electorate: the leader mutates META and journals every change;
// standbys mirror the journal and promote on lease expiry (election.go).
type Master struct {
	opts MasterOptions
	reg  *Registry
	id   string

	// electorate is the sorted ID set of all masters (self included);
	// immutable after construction.
	electorate []string

	journal *metaJournal
	stopped atomic.Bool

	mu           sync.Mutex
	servers      map[string]*member
	order        []string // join order, for deterministic placement
	tables       map[string][]*RegionInfo
	epoch        int64
	nextRegionID int
	// pendingSync holds regions whose primary has not yet confirmed its
	// replication chain and serving fence (a SetFollowers/SetServing RPC
	// failed mid-failover or mid-rebuild); every liveness and health
	// round re-pushes them until the primary acks.
	pendingSync map[regionRef]bool

	// Election state (all under mu). masterEpoch is this master's
	// fencing term stamped on every control RPC; 0 means legacy
	// single-master, unfenced. maxSeenMasterEpoch tracks the highest
	// epoch observed anywhere — the floor the next promotion must clear.
	role               string
	masterEpoch        int64
	maxSeenMasterEpoch int64
	leaderID           string
	leaderAddr         string
	lastSeen           map[string]time.Time // peer ID -> last successful contact
	peerConns          map[string]MasterPeerConn
	electionGrace      time.Time
	// pushCursors tracks, per standby, the journal position the last
	// acked push left it at — where the next push resends from. Reset
	// (full resend) on a failed push; corrected from the ack when the
	// standby reports a different position.
	pushCursors map[string]JournalPushAck
	// fastElect marks a cold-started standby that has never led nor been
	// deposed this incarnation: it may promote on a tick that reached the
	// whole electorate without waiting out the election grace (a restart
	// must not idle the cluster for a full lease when every peer is
	// reachable and none leads). Cleared on first promotion or stepdown —
	// a deposed leader always waits out the re-armed grace.
	fastElect bool

	loopStop chan struct{}
	loopOnce sync.Once

	o                   *obs.Registry
	cHeartbeats         *obs.Counter
	cJoins              *obs.Counter
	cDeaths             *obs.Counter
	cFailovers          *obs.Counter
	cMoves              *obs.Counter
	cRepairs            *obs.Counter
	cRebuilds           *obs.Counter
	cElections          *obs.Counter
	cStepdowns          *obs.Counter
	gLeader             *obs.Gauge
	cJournalAppends     *obs.Counter
	cJournalCheckpoints *obs.Counter
	cJournalTails       *obs.Counter
	cJournalPushes      *obs.Counter
	cJournalPushMisses  *obs.Counter
}

// NewMaster creates a master resolving servers through reg. It cannot
// surface journal-recovery errors, so it requires JournalDir to be
// unset; use OpenMaster for a durable-journal master.
func NewMaster(reg *Registry, opts MasterOptions) *Master {
	m, err := OpenMaster(reg, opts)
	if err != nil {
		// Only reachable with a JournalDir, which NewMaster's contract
		// excludes.
		panic("dstore: NewMaster with a journal dir: " + err.Error())
	}
	return m
}

// OpenMaster creates a master, replaying its durable META journal when
// MasterOptions.JournalDir is set: the recovered catalog (tables,
// servers, epochs) is adopted wholesale, server leases are restamped to
// now (nobody is declared dead for silence during the master's own
// outage), and a torn journal tail is truncated.
func OpenMaster(reg *Registry, opts MasterOptions) (*Master, error) {
	o := obs.NewRegistry()
	journal, recovered, err := openMetaJournal(opts.FS, opts.JournalDir)
	if err != nil {
		return nil, fmt.Errorf("dstore: opening META journal: %w", err)
	}
	m := &Master{
		opts:                opts,
		reg:                 reg,
		id:                  opts.id(),
		journal:             journal,
		servers:             make(map[string]*member),
		tables:              make(map[string][]*RegionInfo),
		pendingSync:         make(map[regionRef]bool),
		nextRegionID:        1,
		lastSeen:            make(map[string]time.Time),
		peerConns:           make(map[string]MasterPeerConn),
		pushCursors:         make(map[string]JournalPushAck),
		loopStop:            make(chan struct{}),
		o:                   o,
		cHeartbeats:         o.Counter("dstore_master_heartbeats_total"),
		cJoins:              o.Counter("dstore_master_joins_total"),
		cDeaths:             o.Counter("dstore_master_server_deaths_total"),
		cFailovers:          o.Counter("dstore_master_failovers_total"),
		cMoves:              o.Counter("dstore_master_moves_total"),
		cRepairs:            o.Counter("dstore_master_rereplications_total"),
		cRebuilds:           o.Counter("quarantine_rebuilds_total"),
		cElections:          o.Counter("dstore_master_elections_total"),
		cStepdowns:          o.Counter("dstore_master_stepdowns_total"),
		gLeader:             o.Gauge("dstore_master_leader"),
		cJournalAppends:     o.Counter("dstore_master_journal_appends_total"),
		cJournalCheckpoints: o.Counter("dstore_master_journal_checkpoints_total"),
		cJournalTails:       o.Counter("dstore_master_journal_tails_total"),
		cJournalPushes:      o.Counter("dstore_master_journal_pushes_total"),
		cJournalPushMisses:  o.Counter("dstore_master_journal_push_misses_total"),
	}
	// Event timestamps follow the injected clock so deterministic tests
	// see deterministic traces.
	o.Now = m.now

	seen := map[string]bool{m.id: true}
	m.electorate = []string{m.id}
	for _, p := range opts.Peers {
		if !seen[p.ID] {
			seen[p.ID] = true
			m.electorate = append(m.electorate, p.ID)
		}
	}
	sort.Strings(m.electorate)

	m.role = roleLeader
	if m.haEnabled() && (opts.Standby || recovered != nil) {
		// A restarted HA master (journal present) must not boot straight
		// into leadership: its catalog may be stale and a live peer may
		// already lead with a higher epoch. It boots as a standby and
		// promotes through the normal election path — fast, if the first
		// tick reaches every peer and sees no fresher leader (fullView in
		// ElectionTick), else after the election grace. Only a fresh
		// non-standby bootstrap (no journal to recover) starts leading
		// immediately.
		m.role = roleStandby
		m.fastElect = true
	}
	if recovered != nil {
		m.adoptStateLocked(*recovered, m.now())
		m.o.Emit("journal_recover", map[string]string{
			"epoch":   strconv.FormatInt(m.epoch, 10),
			"servers": strconv.Itoa(len(m.servers)),
		})
	}
	if m.role == roleLeader {
		m.leaderID, m.leaderAddr = m.id, m.peerAddr(m.id)
		if m.haEnabled() {
			// A fresh HA bootstrap leader (nothing recovered — a restart
			// boots standby) mints its first fencing epoch.
			m.masterEpoch = m.mintEpochLocked()
			m.maxSeenMasterEpoch = m.masterEpoch
			for _, regions := range m.tables {
				for _, g := range regions {
					m.pendSyncLocked(g)
				}
			}
		}
		m.gLeader.Set(1)
	} else {
		if recovered != nil {
			// The recovered buffer is this master's own past history, not
			// a byte-copy of the current leader's — clear it so mirroring
			// starts aligned (the shadow catalog above keeps the recovered
			// view until fresher frames arrive).
			m.journal.resetMirror()
		}
		m.journal.setMirroring(true)
	}
	return m, nil
}

// haEnabled reports whether this master runs the HA machinery: more
// than one master in the electorate.
func (m *Master) haEnabled() bool { return len(m.electorate) > 1 }

// MasterID returns this master's identity in the electorate.
func (m *Master) MasterID() string { return m.id }

// IsLeader reports whether this master currently leads.
func (m *Master) IsLeader() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.role == roleLeader
}

// Role returns "leader" or "standby".
func (m *Master) Role() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.role
}

// MasterEpoch returns this master's fencing epoch (0 = legacy,
// unfenced).
func (m *Master) MasterEpoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.masterEpoch
}

// Stop simulates a master crash: every subsequent RPC — heartbeats,
// META fetches, peer pings, journal tails — fails with errStopped, and
// the background loop halts. Like RegionServer.Stop there is no
// restart; a recovered master is a new OpenMaster over the same
// journal dir.
func (m *Master) Stop() {
	m.stopped.Store(true)
	m.Close()
	m.journal.close() //nolint:errcheck — crash simulation; the file handle is best-effort
	// Zero the leadership gauge so a merged view over live + crashed
	// masters reports only leaders that are actually serving.
	m.gLeader.Set(0)
}

// Stopped reports whether the master has been stopped.
func (m *Master) Stopped() bool { return m.stopped.Load() }

// notLeaderLocked is the redirect a standby returns from control-plane
// calls it does not own.
func (m *Master) notLeaderLocked() error {
	return &NotLeaderError{LeaderID: m.leaderID, LeaderAddr: m.leaderAddr}
}

// journalLocked appends the post-mutation catalog image to the META
// journal. Every epoch-bumping mutation calls it while still holding
// the catalog lock, so journal order is mutation order.
func (m *Master) journalLocked(kind string) {
	if m.journal == nil {
		return
	}
	checkpointed, err := m.journal.append(journalRecord{Kind: kind, State: m.snapshotStateLocked()})
	if err != nil {
		m.o.Emit("journal_error", map[string]string{"kind": kind, "error": err.Error()})
		return
	}
	m.cJournalAppends.Inc()
	if checkpointed {
		m.cJournalCheckpoints.Inc()
	}
	if m.haEnabled() && m.role == roleLeader {
		m.pushJournalLocked()
	}
}

// pushJournalLocked replicates the just-appended journal tail to every
// standby seen alive within a lease, synchronously, before the mutation
// that triggered it acks: a leader crash right after the ack then finds
// the mutation already on every reachable standby's mirror, closing the
// pull-tail window where acked META changes lived only on the dead
// leader's disk. The push is availability-first, never quorum: an
// unreachable or refusing standby is skipped (counted in
// dstore_master_journal_push_misses_total and emitted), so a cluster
// whose standbys are all down still serves mutations — frames acked in
// that state ride on the leader's durable journal alone until a standby
// reconnects and pull-tailing catches it up. The receive path
// (AcceptJournalPush) takes only the journal's leaf lock, never the
// catalog lock, so two partitioned leaders pushing at each other cannot
// deadlock on crossed locks.
func (m *Master) pushJournalLocked() {
	now := m.now()
	lease := m.leaseDuration()
	for _, id := range m.electorate {
		if id == m.id {
			continue
		}
		if last, ok := m.lastSeen[id]; !ok || now.Sub(last) > lease {
			continue
		}
		c, err := m.peerConnLocked(id)
		if err != nil {
			continue
		}
		cur := m.pushCursors[id]
		t := m.journal.tail(cur.Gen, cur.Size)
		if len(t.Frames) == 0 {
			m.pushCursors[id] = JournalPushAck{Gen: t.Gen, Size: t.Size}
			continue
		}
		ack, err := c.JournalPush(m.id, t)
		if err != nil {
			// Unknown peer state now: forget the cursor so the next push
			// resends from scratch.
			delete(m.pushCursors, id)
			m.cJournalPushMisses.Inc()
			m.o.Emit("journal_push_miss", map[string]string{"peer": id, "error": err.Error()})
			continue
		}
		m.cJournalPushes.Inc()
		m.pushCursors[id] = ack
	}
}

// AcceptJournalPush receives a leader's synchronous journal replication
// (the /m/journal/push handler). It deliberately touches only the
// journal's own lock — never the catalog lock — so a push can never
// stall behind (or deadlock against) a local catalog operation. The
// shadow catalog catches up on the next election tick; promotion
// replays the mirror first, so nothing pushed is lost even when no tick
// intervened between the push and the leader's death.
func (m *Master) AcceptJournalPush(from string, t JournalTail) (JournalPushAck, error) {
	if m.stopped.Load() {
		return JournalPushAck{}, errStopped
	}
	ack, ok := m.journal.adoptPush(from, t)
	if !ok {
		return ack, fmt.Errorf("dstore: journal push refused: %s is not mirroring", m.id)
	}
	return ack, nil
}

// snapshotStateLocked captures the full catalog image a journal record
// carries.
func (m *Master) snapshotStateLocked() metaState {
	st := metaState{
		MasterEpoch:  m.masterEpoch,
		LeaderID:     m.leaderID,
		Epoch:        m.epoch,
		NextRegionID: m.nextRegionID,
		Tables:       make(map[string][]RegionInfo, len(m.tables)),
	}
	for t, regions := range m.tables {
		rs := make([]RegionInfo, len(regions))
		for i, g := range regions {
			rs[i] = *g
			rs[i].Followers = append([]string(nil), g.Followers...)
		}
		st.Tables[t] = rs
	}
	for _, id := range m.order {
		mem := m.servers[id]
		st.Servers = append(st.Servers, journalServer{Peer: mem.peer, Alive: mem.alive})
	}
	return st
}

// adoptStateLocked replaces the catalog with a journaled image — the
// recovery path of a restarted master and the shadow view of a tailing
// standby. Server conns re-resolve through the registry; a peer that
// has not (re)registered yet gets an unresolvable stub that fails like
// a dead transport until its next Join.
func (m *Master) adoptStateLocked(st metaState, now time.Time) {
	m.epoch = st.Epoch
	m.nextRegionID = st.NextRegionID
	if m.nextRegionID < 1 {
		m.nextRegionID = 1
	}
	if st.MasterEpoch > m.maxSeenMasterEpoch {
		m.maxSeenMasterEpoch = st.MasterEpoch
	}
	m.tables = make(map[string][]*RegionInfo, len(st.Tables))
	for t, regions := range st.Tables {
		ptrs := make([]*RegionInfo, len(regions))
		for i := range regions {
			g := regions[i]
			g.Followers = append([]string(nil), g.Followers...)
			ptrs[i] = &g
		}
		m.tables[t] = ptrs
	}
	m.servers = make(map[string]*member, len(st.Servers))
	m.order = m.order[:0]
	for _, s := range st.Servers {
		conn, err := m.reg.Resolve(s.Peer)
		if err != nil {
			conn = &unresolvedConn{id: s.Peer.ID}
		}
		m.servers[s.Peer.ID] = &member{peer: s.Peer, conn: conn, lastBeat: now, alive: s.Alive}
		m.order = append(m.order, s.Peer.ID)
	}
}

// Obs exposes the master's metrics registry and event log.
func (m *Master) Obs() *obs.Registry { return m.o }

func (m *Master) now() time.Time {
	if m.opts.Now != nil {
		return m.opts.Now()
	}
	return time.Now() //pstorm:allow clockcheck this is the injection point's default when MasterOptions.Now is unset
}

// Control-RPC wrappers: every master-driven mutation of a region
// server is stamped with this master's fencing epoch, and a stale
// rejection — the server has already obeyed a newer leader — deposes
// this master on the spot instead of letting it keep mutating a
// catalog nobody obeys. Like the call sites they replaced, they run
// under the catalog lock by design (see the MoveRegion doc).

// depose steps the leader down when a control RPC was rejected stale.
func (m *Master) deposeOnStaleLocked(err error) error {
	if errors.Is(err, ErrStaleMaster) {
		m.stepDownLocked("control RPC rejected: " + err.Error())
	}
	return err
}

func (m *Master) rpcInstall(mem *member, snap *hstore.RegionSnapshot, serving bool) error {
	return m.deposeOnStaleLocked(mem.conn.Install(snap, serving, m.masterEpoch))
}

func (m *Master) rpcSetServing(mem *member, table string, regionID int, serving bool) error {
	return m.deposeOnStaleLocked(mem.conn.SetServing(table, regionID, serving, m.masterEpoch))
}

func (m *Master) rpcDrop(mem *member, table string, regionID int) error {
	return m.deposeOnStaleLocked(mem.conn.Drop(table, regionID, m.masterEpoch))
}

func (m *Master) rpcSetFollowers(mem *member, table string, regionID int, followers []Peer) error {
	return m.deposeOnStaleLocked(mem.conn.SetFollowers(table, regionID, followers, m.masterEpoch))
}

// Join registers a region server. A re-join of a known ID — whether its
// old incarnation was already declared dead or is still inside its
// liveness window — is a *new incarnation*: the restarted process holds
// none of the regions META assigned its predecessor, so its pending (or
// not-yet-due) failover runs synchronously here and the server revives
// empty. Before this, a same-ID restart inside the liveness window
// raced the death path: META kept routing to a server that no longer
// hosted anything, and the eventual timeout double-processed it.
func (m *Master) Join(p Peer) error {
	if m.stopped.Load() {
		return errStopped
	}
	conn, err := m.reg.Resolve(p)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.role != roleLeader {
		return m.notLeaderLocked()
	}
	if mem, ok := m.servers[p.ID]; ok {
		// New incarnation: fail over whatever the old one held, then
		// revive empty. failoverLocked prunes it from every follower set
		// and promotes live followers of its primaries.
		mem.alive = false
		m.failoverLocked()
		mem.peer = p
		mem.conn = conn
		mem.lastBeat = m.now()
		mem.alive = true
		m.epoch++
		m.cJoins.Inc()
		m.o.Emit("rejoin", map[string]string{"server": p.ID})
		m.journalLocked("rejoin")
		return nil
	}
	m.servers[p.ID] = &member{peer: p, conn: conn, lastBeat: m.now(), alive: true}
	m.order = append(m.order, p.ID)
	m.epoch++
	m.cJoins.Inc()
	m.o.Emit("join", map[string]string{"server": p.ID})
	m.journalLocked("join")
	return nil
}

// Heartbeat records liveness for a server. Standbys redirect: only the
// leader's liveness view drives failover.
func (m *Master) Heartbeat(id string) error {
	if m.stopped.Load() {
		return errStopped
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.role != roleLeader {
		return m.notLeaderLocked()
	}
	mem, ok := m.servers[id]
	if !ok {
		return fmt.Errorf("%w: heartbeat from %q", ErrUnknownServer, id)
	}
	mem.lastBeat = m.now()
	mem.alive = true
	m.cHeartbeats.Inc()
	return nil
}

// Meta snapshots the routing view.
func (m *Master) Meta() Meta {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Meta{Epoch: m.epoch, Tables: make(map[string][]RegionInfo, len(m.tables))}
	for t, regions := range m.tables {
		rs := make([]RegionInfo, len(regions))
		for i, g := range regions {
			rs[i] = *g
			rs[i].Followers = append([]string(nil), g.Followers...)
		}
		out.Tables[t] = rs
	}
	for _, id := range m.order {
		out.Servers = append(out.Servers, m.servers[id].peer)
	}
	return out
}

// Epoch returns the current META epoch.
func (m *Master) Epoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// aliveIDs returns live server IDs in join order.
func (m *Master) aliveIDs() []string {
	var out []string
	for _, id := range m.order {
		if m.servers[id].alive {
			out = append(out, id)
		}
	}
	return out
}

// CreateTable lays the table out with the default splits and
// replication: region i gets primary servers[i mod n] and the next
// replication-1 servers as followers.
func (m *Master) CreateTable(table string) error {
	return m.CreateTableSplits(table, m.opts.DefaultSplits)
}

// CreateTableSplits creates a table with explicit region boundaries:
// splits [k1, k2] yields regions ["", k1), [k1, k2), [k2, "").
func (m *Master) CreateTableSplits(table string, splits []string) error {
	if m.stopped.Load() {
		return errStopped
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.role != roleLeader {
		return m.notLeaderLocked()
	}
	if _, ok := m.tables[table]; ok {
		return fmt.Errorf("dstore: table %q already exists", table)
	}
	alive := m.aliveIDs()
	if len(alive) == 0 {
		return fmt.Errorf("dstore: no live region servers")
	}
	repl := m.opts.replication()
	if repl > len(alive) {
		repl = len(alive)
	}
	splits = append([]string(nil), splits...)
	sort.Strings(splits)
	bounds := append([]string{""}, splits...)
	var regions []*RegionInfo
	for i, start := range bounds {
		end := ""
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		g := &RegionInfo{
			ID:       m.nextRegionID,
			Table:    table,
			StartKey: start,
			EndKey:   end,
			Primary:  alive[i%len(alive)],
		}
		m.nextRegionID++
		for j := 1; j < repl; j++ {
			g.Followers = append(g.Followers, alive[(i+j)%len(alive)])
		}
		if err := m.installRegionLocked(g); err != nil {
			return err
		}
		regions = append(regions, g)
	}
	m.tables[table] = regions
	m.epoch++
	m.journalLocked("create_table")
	return nil
}

// installRegionLocked creates the empty copies of a new region on its
// primary and followers and wires the replication chain.
func (m *Master) installRegionLocked(g *RegionInfo) error {
	empty := &hstore.RegionSnapshot{Table: g.Table, RegionID: g.ID, StartKey: g.StartKey, EndKey: g.EndKey}
	if err := m.rpcInstall(m.servers[g.Primary], empty, true); err != nil {
		return fmt.Errorf("dstore: installing region %d primary on %s: %w", g.ID, g.Primary, err)
	}
	for _, f := range g.Followers {
		if err := m.rpcInstall(m.servers[f], empty, false); err != nil {
			return fmt.Errorf("dstore: installing region %d follower on %s: %w", g.ID, f, err)
		}
	}
	return m.setFollowersLocked(g)
}

func (m *Master) setFollowersLocked(g *RegionInfo) error {
	peers := make([]Peer, 0, len(g.Followers))
	for _, f := range g.Followers {
		peers = append(peers, m.servers[f].peer)
	}
	return m.rpcSetFollowers(m.servers[g.Primary], g.Table, g.ID, peers)
}

// CheckLiveness declares servers whose heartbeat lapsed dead (as of
// now), promotes followers of their primary regions, prunes them from
// follower sets, and re-replicates under-replicated regions onto spare
// live servers. It returns the IDs of servers newly declared dead.
// pstormd and background local clusters call it on a timer; tests call
// it directly with a chosen clock.
func (m *Master) CheckLiveness(now time.Time) []string {
	if m.stopped.Load() {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.role != roleLeader {
		// A standby's liveness view is secondhand (journal shadow);
		// only the leader declares deaths.
		return nil
	}
	epochBefore := m.epoch
	var died []string
	for _, id := range m.order {
		mem := m.servers[id]
		if mem.alive && now.Sub(mem.lastBeat) > m.opts.heartbeatTimeout() {
			mem.alive = false
			died = append(died, id)
			m.cDeaths.Inc()
			m.o.Emit("server_dead", map[string]string{"server": id})
		}
	}
	if len(died) > 0 {
		m.failoverLocked()
	}
	m.repairLocked()
	m.syncPendingLocked()
	if len(died) > 0 || m.epoch != epochBefore {
		m.journalLocked("liveness")
	}
	return died
}

// regionRef names one region for the pending-sync set.
type regionRef struct {
	table string
	id    int
}

func (m *Master) pendSyncLocked(g *RegionInfo) {
	m.pendingSync[regionRef{g.Table, g.ID}] = true
}

// syncPendingLocked re-pushes the replication chain and serving fence
// of every region left pending by a failed RPC. Refs are retried in
// sorted order so the RPC sequence — and with it a chaos harness's
// fault schedule — is deterministic.
func (m *Master) syncPendingLocked() {
	if len(m.pendingSync) == 0 {
		return
	}
	refs := make([]regionRef, 0, len(m.pendingSync))
	for r := range m.pendingSync {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].table != refs[j].table {
			return refs[i].table < refs[j].table
		}
		return refs[i].id < refs[j].id
	})
	for _, ref := range refs {
		g, err := m.regionLocked(ref.table, ref.id)
		if err != nil {
			delete(m.pendingSync, ref) // region vanished; nothing to sync
			continue
		}
		if !m.servers[g.Primary].alive {
			continue // failover will reassign; keep it pending
		}
		if m.setFollowersLocked(g) != nil {
			continue
		}
		if err := m.rpcSetServing(m.servers[g.Primary], ref.table, ref.id, true); err != nil {
			continue
		}
		delete(m.pendingSync, ref)
	}
}

// failoverLocked walks every region and repairs assignments that name
// dead servers: dead followers are pruned; a dead primary is replaced
// by its first live follower, whose fenced copy is promoted to serving.
func (m *Master) failoverLocked() {
	changed := false
	for _, regions := range m.tables {
		for _, g := range regions {
			live := g.Followers[:0]
			for _, f := range g.Followers {
				if m.servers[f].alive {
					live = append(live, f)
				} else {
					changed = true
				}
			}
			g.Followers = live
			if m.servers[g.Primary].alive {
				if changed {
					if m.setFollowersLocked(g) != nil {
						m.pendSyncLocked(g)
					}
				}
				continue
			}
			if len(g.Followers) == 0 {
				// No live copy; the region is unavailable until an
				// operator restores a server. Leave META pointing at
				// the corpse so clients keep retrying.
				continue
			}
			promoted := g.Followers[0]
			dead := g.Primary
			g.Followers = g.Followers[1:]
			g.Primary = promoted
			changed = true
			m.cFailovers.Inc()
			m.o.Emit("failover", map[string]string{
				"table": g.Table, "region": strconv.Itoa(g.ID),
				"from": dead, "to": promoted,
			})
			// Followers before serving: writes acked by the promoted
			// primary must already fan out to the surviving replicas. A
			// failed push pends the region — syncPendingLocked retries
			// until the new primary confirms its chain and fence, so a
			// dropped RPC cannot leave the region fenced forever.
			if m.setFollowersLocked(g) != nil {
				m.pendSyncLocked(g)
			}
			if err := m.rpcSetServing(m.servers[promoted], g.Table, g.ID, true); err != nil {
				m.pendSyncLocked(g)
			}
		}
	}
	if changed {
		m.epoch++
	}
}

// repairLocked restores the replication factor of under-replicated
// regions by seeding fresh followers on live servers that do not yet
// hold a copy: install an empty fenced region, join the replication
// chain (so new writes flow), then backfill from a primary snapshot.
func (m *Master) repairLocked() {
	repl := m.opts.replication()
	alive := m.aliveIDs()
	if len(alive) < 2 {
		return
	}
	changed := false
	for _, regions := range m.tables {
		for _, g := range regions {
			if !m.servers[g.Primary].alive {
				continue
			}
			for len(g.Followers)+1 < repl {
				cand := m.pickCandidateLocked(g, alive)
				if cand == "" {
					break
				}
				empty := &hstore.RegionSnapshot{Table: g.Table, RegionID: g.ID, StartKey: g.StartKey, EndKey: g.EndKey}
				if err := m.rpcInstall(m.servers[cand], empty, false); err != nil {
					break
				}
				g.Followers = append(g.Followers, cand)
				if err := m.setFollowersLocked(g); err != nil {
					g.Followers = g.Followers[:len(g.Followers)-1]
					break
				}
				snap, err := m.servers[g.Primary].conn.Export(g.Table, g.ID)
				if err == nil {
					err = m.servers[cand].conn.Apply(g.Table, snap.Cells)
				}
				if err != nil {
					// Roll the recruit back; retried next round.
					g.Followers = g.Followers[:len(g.Followers)-1]
					m.setFollowersLocked(g)                   //nolint:errcheck
					m.rpcDrop(m.servers[cand], g.Table, g.ID) //nolint:errcheck
					break
				}
				changed = true
				m.cRepairs.Inc()
				m.o.Emit("rereplicate", map[string]string{
					"table": g.Table, "region": strconv.Itoa(g.ID), "to": cand,
				})
			}
		}
	}
	if changed {
		m.epoch++
	}
}

// CheckHealth polls every live server's Health report and rebuilds
// region copies the servers have quarantined after checksum failures.
// The polling happens outside the catalog lock — a hung server must
// not stall heartbeats — and the resulting rebuilds re-validate the
// catalog under the lock. It returns the number of copies rebuilt (or
// evicted; re-replication restores the copy count on the next
// CheckLiveness round). pstormd and background local clusters call it
// alongside CheckLiveness; deterministic tests call it directly.
func (m *Master) CheckHealth() int {
	if m.stopped.Load() {
		return 0
	}
	if !m.IsLeader() {
		return 0
	}
	type probe struct {
		id   string
		conn ServerConn
	}
	m.mu.Lock()
	probes := make([]probe, 0, len(m.order))
	for _, id := range m.order {
		if mem := m.servers[id]; mem.alive {
			probes = append(probes, probe{id, mem.conn})
		}
	}
	m.mu.Unlock()

	type finding struct {
		server string
		q      hstore.QuarantinedRegion
	}
	var findings []finding
	quarantined := make(map[string]map[string]bool) // regionKey -> servers with a bad copy
	for _, p := range probes {
		h, err := p.conn.Health()
		if err != nil {
			continue // dead or unreachable: the liveness path owns that case
		}
		for _, q := range h.Quarantined {
			findings = append(findings, finding{p.id, q})
			k := regionKey(q.Table, q.RegionID)
			if quarantined[k] == nil {
				quarantined[k] = make(map[string]bool)
			}
			quarantined[k][p.id] = true
		}
	}
	rebuilt := 0
	for _, f := range findings {
		if m.rebuildQuarantined(f.server, f.q.Table, f.q.RegionID, quarantined[regionKey(f.q.Table, f.q.RegionID)]) {
			rebuilt++
		}
	}
	m.mu.Lock()
	m.syncPendingLocked()
	m.mu.Unlock()
	return rebuilt
}

// rebuildQuarantined evicts one quarantined region copy: a quarantined
// primary hands off to a healthy follower (promotion, as in failover)
// and a quarantined follower is pruned; either way the corrupt copy is
// dropped from its server and re-replication restores the copy count
// from the surviving healthy data. badCopies names every server whose
// copy of this region is also quarantined, so promotion never picks a
// copy that is corrupt too.
//
// Like MoveRegion, the choreography is atomic under the catalog lock —
// the fence flips and META mutation must not interleave with
// concurrent failovers — so the conn RPCs are annotated for lockcheck.
func (m *Master) rebuildQuarantined(server, table string, regionID int, badCopies map[string]bool) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, err := m.regionLocked(table, regionID)
	if err != nil {
		return false // table or region vanished since the poll
	}
	mem, ok := m.servers[server]
	if !ok {
		return false
	}
	if g.Primary == server {
		promoted := ""
		for _, f := range g.Followers {
			if m.servers[f].alive && !badCopies[f] {
				promoted = f
				break
			}
		}
		if promoted == "" {
			// No healthy replica to rebuild from; the region stays
			// unavailable (reads keep failing retryable) rather than
			// serving corrupt bytes.
			return false
		}
		live := make([]string, 0, len(g.Followers))
		for _, f := range g.Followers {
			if f != promoted {
				live = append(live, f)
			}
		}
		g.Primary = promoted
		g.Followers = live
		// Followers before serving, as in failover: writes acked by the
		// promoted primary must already fan out to surviving replicas.
		// Failures pend the region for syncPendingLocked to retry.
		if m.setFollowersLocked(g) != nil {
			m.pendSyncLocked(g)
		}
		if err := m.rpcSetServing(m.servers[promoted], table, regionID, true); err != nil {
			m.pendSyncLocked(g)
		}
	} else {
		idx := -1
		for i, f := range g.Followers {
			if f == server {
				idx = i
				break
			}
		}
		if idx == -1 {
			return false // already evicted
		}
		g.Followers = append(g.Followers[:idx], g.Followers[idx+1:]...)
		if m.setFollowersLocked(g) != nil {
			m.pendSyncLocked(g)
		}
	}
	// Drop the corrupt copy; a failure leaves an orphan the next health
	// round retries (the copy stays quarantined, so it is never read).
	m.rpcDrop(mem, table, regionID) //nolint:errcheck
	m.epoch++
	m.cRebuilds.Inc()
	m.o.Emit("quarantine_rebuild", map[string]string{
		"table": table, "region": strconv.Itoa(regionID), "server": server,
	})
	m.journalLocked("quarantine_rebuild")
	return true
}

// pickCandidateLocked chooses a live server that holds no copy of g,
// preferring the one with the fewest primary regions.
func (m *Master) pickCandidateLocked(g *RegionInfo, alive []string) string {
	holds := map[string]bool{g.Primary: true}
	for _, f := range g.Followers {
		holds[f] = true
	}
	counts := m.primaryCountsLocked()
	best := ""
	for _, id := range alive {
		if holds[id] {
			continue
		}
		if best == "" || counts[id] < counts[best] {
			best = id
		}
	}
	return best
}

func (m *Master) primaryCountsLocked() map[string]int {
	counts := make(map[string]int, len(m.servers))
	for id := range m.servers {
		counts[id] = 0
	}
	for _, regions := range m.tables {
		for _, g := range regions {
			counts[g.Primary]++
		}
	}
	return counts
}

// MoveRegion moves a region's primary to another live server and
// returns the snapshot bytes shipped. If the target already follows the
// region, the move is a promotion flip (zero bytes moved); otherwise the
// source is fenced, its snapshot exported and installed on the target,
// META flipped, and the source copy dropped.
//
// The whole choreography runs under the catalog lock: the fence, the
// META mutation, and the rollbacks must be atomic with respect to
// concurrent liveness checks and other moves, so the conn RPCs below
// are individually annotated for lockcheck. The known cost is that a
// slow peer stalls heartbeats for the duration of one move; lifting
// the RPCs out requires a per-region move lease and is tracked as
// future work rather than bolted on here.
func (m *Master) MoveRegion(table string, regionID int, to string) (int64, error) {
	if m.stopped.Load() {
		return 0, errStopped
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.role != roleLeader {
		return 0, m.notLeaderLocked()
	}
	g, err := m.regionLocked(table, regionID)
	if err != nil {
		return 0, err
	}
	dst, ok := m.servers[to]
	if !ok || !dst.alive {
		return 0, fmt.Errorf("dstore: move target %q not a live server", to)
	}
	if to == g.Primary {
		return 0, nil
	}
	src := m.servers[g.Primary]

	for i, f := range g.Followers {
		if f != to {
			continue
		}
		// Promotion flip: the target already holds a synchronously
		// replicated copy. Fence the old primary first so no write can
		// land there after the flip, and give the target its follower
		// set while it is still fenced — a write acked by the new
		// primary before its followers were wired up would be
		// unreplicated, and a later flip back would lose it.
		if err := m.rpcSetServing(src, table, regionID, false); err != nil {
			return 0, fmt.Errorf("dstore: fencing %s: %w", g.Primary, err)
		}
		oldPrimary := g.Primary
		g.Followers[i] = g.Primary
		g.Primary = to
		if err := m.setFollowersLocked(g); err != nil {
			g.Primary = oldPrimary
			g.Followers[i] = to
			m.rpcSetServing(src, table, regionID, true) //nolint:errcheck — undo fence
			return 0, err
		}
		if err := m.rpcSetServing(dst, table, regionID, true); err != nil {
			g.Primary = oldPrimary
			g.Followers[i] = to
			m.rpcSetFollowers(dst, table, regionID, nil) //nolint:errcheck
			m.rpcSetServing(src, table, regionID, true)  //nolint:errcheck — undo fence
			return 0, err
		}
		m.rpcSetFollowers(src, table, regionID, nil) //nolint:errcheck
		m.epoch++
		m.cMoves.Inc()
		m.o.Emit("move", map[string]string{
			"table": table, "region": strconv.Itoa(regionID),
			"from": oldPrimary, "to": to, "kind": "flip",
		})
		m.journalLocked("move")
		return 0, nil
	}

	// Full move: fence → export → wire followers → install → flip →
	// drop. The target learns its follower set before it serves, for
	// the same reason as the flip above.
	if err := m.rpcSetServing(src, table, regionID, false); err != nil {
		return 0, fmt.Errorf("dstore: fencing %s: %w", g.Primary, err)
	}
	//pstorm:allow lockcheck move choreography is atomic under the catalog lock by design (see MoveRegion doc)
	snap, err := src.conn.Export(table, regionID)
	if err != nil {
		m.rpcSetServing(src, table, regionID, true) //nolint:errcheck — undo fence
		return 0, err
	}
	oldPrimary := g.Primary
	g.Primary = to
	if err := m.setFollowersLocked(g); err != nil {
		g.Primary = oldPrimary
		m.rpcSetServing(src, table, regionID, true) //nolint:errcheck — undo fence
		return 0, err
	}
	if err := m.rpcInstall(dst, snap, true); err != nil {
		g.Primary = oldPrimary
		m.rpcSetFollowers(dst, table, regionID, nil) //nolint:errcheck
		m.rpcSetServing(src, table, regionID, true)  //nolint:errcheck — undo fence
		return 0, err
	}
	m.epoch++
	m.cMoves.Inc()
	m.o.Emit("move", map[string]string{
		"table": table, "region": strconv.Itoa(regionID),
		"from": oldPrimary, "to": to, "kind": "full",
	})
	m.journalLocked("move")
	m.rpcSetFollowers(src, table, regionID, nil) //nolint:errcheck
	m.rpcDrop(src, table, regionID)              //nolint:errcheck — orphan copy, harmless
	return snap.Bytes(), nil
}

// Rebalance evens primary-region counts across live servers with
// promotion flips where possible and full moves otherwise, returning
// total bytes shipped.
func (m *Master) Rebalance() (int64, error) {
	if m.stopped.Load() {
		return 0, errStopped
	}
	var moved int64
	for {
		m.mu.Lock()
		if m.role != roleLeader {
			err := m.notLeaderLocked()
			m.mu.Unlock()
			return moved, err
		}
		counts := m.primaryCountsLocked()
		alive := m.aliveIDs()
		if len(alive) < 2 {
			m.mu.Unlock()
			return moved, nil
		}
		maxID, minID := alive[0], alive[0]
		for _, id := range alive {
			if counts[id] > counts[maxID] {
				maxID = id
			}
			if counts[id] < counts[minID] {
				minID = id
			}
		}
		if counts[maxID]-counts[minID] <= 1 {
			m.mu.Unlock()
			return moved, nil
		}
		// Pick one region of the overloaded server to shed. Capture its
		// identity under the lock; MoveRegion re-locks and re-validates.
		pickTable, pickID := "", 0
		for _, regions := range m.tables {
			for _, g := range regions {
				if g.Primary == maxID {
					pickTable, pickID = g.Table, g.ID
					break
				}
			}
			if pickTable != "" {
				break
			}
		}
		m.mu.Unlock()
		if pickTable == "" {
			return moved, nil
		}
		n, err := m.MoveRegion(pickTable, pickID, minID)
		if err != nil {
			return moved, err
		}
		moved += n
	}
}

func (m *Master) regionLocked(table string, regionID int) (*RegionInfo, error) {
	regions, ok := m.tables[table]
	if !ok {
		return nil, fmt.Errorf("dstore: table %q does not exist", table)
	}
	for _, g := range regions {
		if g.ID == regionID {
			return g, nil
		}
	}
	return nil, fmt.Errorf("dstore: region %d not in table %q", regionID, table)
}

// ServerStatus is one row of the master's operator view.
type ServerStatus struct {
	Peer      Peer      `json:"peer"`
	Alive     bool      `json:"alive"`
	LastBeat  time.Time `json:"last_beat"`
	Primaries int       `json:"primaries"`
	Follows   int       `json:"follows"`
}

// Status reports per-server liveness and region counts.
func (m *Master) Status() []ServerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	follows := make(map[string]int)
	for _, regions := range m.tables {
		for _, g := range regions {
			for _, f := range g.Followers {
				follows[f]++
			}
		}
	}
	counts := m.primaryCountsLocked()
	out := make([]ServerStatus, 0, len(m.order))
	for _, id := range m.order {
		mem := m.servers[id]
		out = append(out, ServerStatus{
			Peer: mem.peer, Alive: mem.alive, LastBeat: mem.lastBeat,
			Primaries: counts[id], Follows: follows[id],
		})
	}
	return out
}

// Start runs the control loop on a background timer (half the
// heartbeat timeout): election/lease upkeep first, then liveness and
// health — the latter two are no-ops on standbys. Close stops it.
func (m *Master) Start() {
	go func() {
		t := time.NewTicker(m.opts.heartbeatTimeout() / 2)
		defer t.Stop()
		for {
			select {
			case <-m.loopStop:
				return
			case <-t.C:
				m.ElectionTick(m.now())
				m.CheckLiveness(m.now())
				m.CheckHealth()
			}
		}
	}()
}

// Close stops the background liveness loop.
func (m *Master) Close() {
	m.loopOnce.Do(func() { close(m.loopStop) })
}
