package dstore

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"time"
)

// Lease-based master election. Every master — leader or standby — runs
// ElectionTick on its liveness timer: leaders ping their peers to learn
// whether a higher master epoch has superseded them, standbys ping to
// track the leader's lease, mirror its META journal, and promote when
// the lease lapses.
//
// The election is deterministic under an injected clock: liveness is
// "pinged successfully within LeaseDuration", and contention between
// standbys is broken by a seeded rank (splitmix64 of the master ID), so
// a test driving the same tick sequence always elects the same master.
//
// Safety does not rest on the election itself but on epoch fencing:
// a promoting master mints masterEpoch = term*len(electorate)+ownIndex,
// so two masters — even promoted concurrently across a partition — can
// never mint the same epoch, and region servers reject control RPCs
// below the highest epoch they have seen (ErrStaleMaster). A partition
// can thus produce two *candidates*, never two effective leaders at one
// epoch: the first fencing sweep settles which one the region servers
// obey, and the loser steps down on its first rejected RPC or ping.
//
// META durability across failover is two-layered. Synchronously, every
// journal append the leader makes is pushed to each standby seen alive
// within a lease before the mutation acks (pushJournalLocked), so the
// common leader-crash case loses nothing: the mirror already holds the
// acked frame. Asynchronously, standbys pull-tail once per tick as a
// catch-up and repair path. The push is availability-first, not a
// quorum write: if every standby is unreachable the leader still acks,
// and mutations acked in that state live only in the leader's own
// durable journal until it (or its disk) comes back — the residual,
// deliberate loss window of this design.

// Master roles.
const (
	roleLeader  = "leader"
	roleStandby = "standby"
)

// PeerStatus is one master's answer to a peer ping — enough for the
// caller to track leases, epochs, and leader hints.
type PeerStatus struct {
	ID          string `json:"id"`
	Role        string `json:"role"`
	MasterEpoch int64  `json:"master_epoch"`
	MetaEpoch   int64  `json:"meta_epoch"`
	LeaderID    string `json:"leader_id,omitempty"`
	LeaderAddr  string `json:"leader_addr,omitempty"`
}

// MasterPeerConn is how one master reaches another: lease pings,
// journal tailing (standby pull), and journal pushing (leader's
// synchronous replication of appended frames). Like ServerConn it is
// transport-agnostic — direct in-process calls for tests and local
// clusters, HTTP for pstormd.
type MasterPeerConn interface {
	Ping(from string) (PeerStatus, error)
	JournalTail(gen, off int64) (JournalTail, error)
	JournalPush(from string, t JournalTail) (JournalPushAck, error)
}

// directPeer adapts an in-process *Master to MasterPeerConn.
type directPeer struct{ m *Master }

func (c *directPeer) Ping(from string) (PeerStatus, error) { return c.m.Ping(from) }
func (c *directPeer) JournalTail(gen, off int64) (JournalTail, error) {
	return c.m.JournalTailSince(gen, off)
}
func (c *directPeer) JournalPush(from string, t JournalTail) (JournalPushAck, error) {
	return c.m.AcceptJournalPush(from, t)
}

// ConnectMasterPeer returns a MasterPeerConn bound to an in-process
// master — the default peer transport of local clusters.
func ConnectMasterPeer(m *Master) MasterPeerConn { return &directPeer{m: m} }

// Ping answers a peer's lease probe with this master's view. The probe
// itself is evidence of the pinger's liveness, so it refreshes the
// pinger's lease here too — leader and standby leases stay symmetric
// even when one side's outbound pings are partitioned away.
func (m *Master) Ping(from string) (PeerStatus, error) {
	if m.stopped.Load() {
		return PeerStatus{}, errStopped
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if from != "" && from != m.id {
		m.lastSeen[from] = m.now()
	}
	return m.statusLocked(), nil
}

func (m *Master) statusLocked() PeerStatus {
	return PeerStatus{
		ID:          m.id,
		Role:        m.role,
		MasterEpoch: m.masterEpoch,
		MetaEpoch:   m.epoch,
		LeaderID:    m.leaderID,
		LeaderAddr:  m.leaderAddr,
	}
}

// HAStatus is the /m/status operator view: the peer-visible election
// state plus journal health.
type HAStatus struct {
	PeerStatus
	JournalBytes int64 `json:"journal_bytes"`
	JournalGen   int64 `json:"journal_gen"`
}

// HAStatus reports this master's election and journal state.
func (m *Master) HAStatus() (HAStatus, error) {
	if m.stopped.Load() {
		return HAStatus{}, errStopped
	}
	gen, off := m.journal.pos()
	m.mu.Lock()
	defer m.mu.Unlock()
	return HAStatus{PeerStatus: m.statusLocked(), JournalBytes: off, JournalGen: gen}, nil
}

// JournalTailSince serves the META journal from (gen, off) — the
// /m/journal endpoint standbys poll. Standbys serve their mirrored
// copy too, so a rebuilt standby can seed from any live master.
func (m *Master) JournalTailSince(gen, off int64) (JournalTail, error) {
	if m.stopped.Load() {
		return JournalTail{}, errStopped
	}
	m.cJournalTails.Inc()
	return m.journal.tail(gen, off), nil
}

// rankOf is a master's seeded election rank; the lowest-ranked live
// standby wins a contested promotion. Hashing the ID through splitmix64
// decouples rank from lexical order (so "m-0" holds no structural
// advantage) while staying reproducible for a given Seed.
func (m *Master) rankOf(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return uint64(splitmix64(m.opts.Seed ^ int64(h.Sum64())))
}

// outranksMe reports whether peer id beats this master in an election
// (lower rank wins; ties break to the lower ID).
func (m *Master) outranksMe(id string) bool {
	r, mine := m.rankOf(id), m.rankOf(m.id)
	return r < mine || (r == mine && id < m.id)
}

// peerConnLocked lazily resolves the conn to a master peer.
func (m *Master) peerConnLocked(id string) (MasterPeerConn, error) {
	if c, ok := m.peerConns[id]; ok {
		return c, nil
	}
	var peer Peer
	found := false
	for _, p := range m.opts.Peers {
		if p.ID == id {
			peer, found = p, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("dstore: unknown master peer %q", id)
	}
	var c MasterPeerConn
	var err error
	if m.opts.PeerResolver != nil {
		c, err = m.opts.PeerResolver(peer)
	} else if peer.Addr != "" {
		c = DialMasterPeer(peer.Addr, m.reg.Timeout)
	} else {
		err = fmt.Errorf("dstore: master peer %q has no address and no resolver", id)
	}
	if err != nil {
		return nil, err
	}
	m.peerConns[id] = c
	return c, nil
}

// ElectionTick advances the lease state machine one step at the given
// instant: ping peers, mirror the leader's journal when standby, step
// down if superseded, promote if the lease has lapsed and no
// better-ranked standby is alive. pstormd and background local clusters
// call it on the liveness timer; deterministic tests drive it directly
// with an injected clock.
func (m *Master) ElectionTick(now time.Time) {
	if m.stopped.Load() || !m.haEnabled() {
		return
	}

	// Resolve the peer set under the lock, ping outside it: a hung peer
	// must not stall META serving or heartbeat handling.
	type peerView struct {
		id  string
		st  PeerStatus
		err error
	}
	m.mu.Lock()
	ids := make([]string, 0, len(m.electorate)-1)
	conns := make([]MasterPeerConn, 0, cap(ids))
	for _, id := range m.electorate {
		if id == m.id {
			continue
		}
		c, err := m.peerConnLocked(id)
		if err != nil {
			continue
		}
		ids = append(ids, id)
		conns = append(conns, c)
	}
	if m.electionGrace.IsZero() {
		// First tick: grant every peer one full lease of silence before
		// anyone may be presumed dead, so a cold-started standby does not
		// promote over a leader it simply has not met yet.
		m.electionGrace = now.Add(m.leaseDuration())
	}
	m.mu.Unlock()

	views := make([]peerView, len(ids))
	for i, id := range ids {
		st, err := conns[i].Ping(m.id)
		views[i] = peerView{id: id, st: st, err: err}
	}

	// Fold the ping results into the lease table and the leader hint.
	var tailFrom MasterPeerConn
	m.mu.Lock()
	supersededBy := int64(0)
	okPings := 0
	for _, v := range views {
		if v.err != nil {
			continue
		}
		okPings++
		m.lastSeen[v.id] = now
		if v.st.MasterEpoch > m.maxSeenMasterEpoch {
			m.maxSeenMasterEpoch = v.st.MasterEpoch
		}
		if v.st.MasterEpoch > m.masterEpoch && v.st.Role == roleLeader {
			supersededBy = v.st.MasterEpoch
		}
		if v.st.Role == roleLeader && (m.role != roleLeader || v.st.MasterEpoch > m.masterEpoch) {
			m.leaderID, m.leaderAddr = v.st.ID, v.st.LeaderAddr
			if m.leaderAddr == "" {
				m.leaderAddr = m.peerAddr(v.st.ID)
			}
		}
	}
	if m.role == roleLeader && supersededBy > 0 {
		m.stepDownLocked("superseded by epoch " + strconv.FormatInt(supersededBy, 10))
	}
	tailID := ""
	if m.role == roleStandby && m.leaderID != "" && m.leaderID != m.id {
		for i, id := range ids {
			if id == m.leaderID && views[i].err == nil {
				tailFrom, tailID = conns[i], id
				break
			}
		}
	}
	// fullView: every electorate peer answered this very tick. For a
	// cold-started standby (fastElect) the grace wait is then pure
	// delay — if any peer led (or outranked us), blockedLocked sees its
	// fresh lease and blocks anyway. This is what lets a restarted
	// cluster, whose masters all boot as standbys now, elect on the
	// first tick instead of serving nothing for a full lease. A deposed
	// leader never takes this path: stepdown clears fastElect so the
	// tick that deposed it cannot also re-promote it.
	fullView := m.fastElect && okPings == len(m.electorate)-1
	gen, off := m.journal.pos()
	m.mu.Unlock()

	// Standby: mirror the leader's journal and adopt its catalog as the
	// shadow view — outside the lock, it is an RPC.
	if tailFrom != nil {
		if t, err := tailFrom.JournalTail(gen, off); err == nil {
			m.adoptJournal(tailID, t, now)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.role == roleStandby && (fullView || !now.Before(m.electionGrace)) && !m.blockedLocked(now) {
		m.promoteLocked(now)
	}
}

// adoptJournal mirrors frames tailed from the named leader and replays
// the buffer into the standby's shadow catalog.
func (m *Master) adoptJournal(source string, t JournalTail, now time.Time) {
	m.journal.adopt(source, t)
	st, _, _, _ := replayMetaJournal(m.journal.tail(0, 0).Frames)
	if st == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.role != roleStandby {
		return // promoted between the RPC and here; our catalog is authoritative now
	}
	m.adoptStateLocked(*st, now)
}

// blockedLocked reports whether a standby must defer promotion: the
// known leader's lease is still fresh, or a better-ranked peer — who
// would win the election — is alive.
func (m *Master) blockedLocked(now time.Time) bool {
	lease := m.leaseDuration()
	if m.leaderID != "" && m.leaderID != m.id {
		if last, ok := m.lastSeen[m.leaderID]; ok && now.Sub(last) <= lease {
			return true
		}
	}
	for _, id := range m.electorate {
		if id == m.id || !m.outranksMe(id) {
			continue
		}
		if last, ok := m.lastSeen[id]; ok && now.Sub(last) <= lease {
			return true
		}
	}
	return false
}

// mintEpochLocked constructs this master's next fencing epoch:
// term*n + index over the lexically sorted electorate. Distinct masters
// occupy distinct residues mod n, so no two masters can ever mint the
// same epoch — the "never two leaders at the same epoch" invariant is
// arithmetic, not protocol.
func (m *Master) mintEpochLocked() int64 {
	n := int64(len(m.electorate))
	if n == 0 {
		return m.maxSeenMasterEpoch + 1
	}
	idx := int64(0)
	for i, id := range m.electorate {
		if id == m.id {
			idx = int64(i)
			break
		}
	}
	term := m.maxSeenMasterEpoch/n + 1
	e := term*n + idx
	for e <= m.maxSeenMasterEpoch {
		term++
		e = term*n + idx
	}
	return e
}

// promoteLocked turns this standby into the leader: mint a fencing
// epoch, adopt the shadow catalog as authoritative, bump the META
// epoch, journal the takeover, and sweep every region's replication
// chain and serving fence at the new epoch so every region server's
// epoch floor rises past any deposed leader.
func (m *Master) promoteLocked(now time.Time) {
	// Pushed frames land in the journal mirror without touching the
	// catalog (the push path stays off the catalog lock), so between the
	// last election tick and now the mirror may be ahead of the shadow
	// catalog. Replay it first and adopt anything fresher — then seal
	// the journal against further pushes: from here this history is
	// authoritative.
	if st, _, _, _ := replayMetaJournal(m.journal.tail(0, 0).Frames); st != nil && st.Epoch > m.epoch {
		m.adoptStateLocked(*st, now)
	}
	m.journal.setMirroring(false)
	m.masterEpoch = m.mintEpochLocked()
	if m.masterEpoch > m.maxSeenMasterEpoch {
		m.maxSeenMasterEpoch = m.masterEpoch
	}
	m.role = roleLeader
	m.fastElect = false
	m.leaderID, m.leaderAddr = m.id, m.peerAddr(m.id)
	m.epoch++
	// Fresh leases all around: nobody is declared dead for silence that
	// happened on the old leader's watch.
	for _, id := range m.order {
		m.servers[id].lastBeat = now
	}
	for _, regions := range m.tables {
		for _, g := range regions {
			m.pendSyncLocked(g)
		}
	}
	m.cElections.Inc()
	m.gLeader.Set(1)
	m.o.Emit("elected", map[string]string{
		"master": m.id, "master_epoch": strconv.FormatInt(m.masterEpoch, 10),
	})
	m.journalLocked("promote")
	m.syncPendingLocked()
}

// stepDownLocked demotes a deposed leader to standby. Its catalog stays
// as a shadow view (reads keep working); mutations redirect via
// NotLeader until the next leader is known. The grace window re-arms to
// a full lease from now — not to zero — so the tick that deposed this
// master cannot also re-promote it: a deposed leader must wait out a
// whole lease, like any cold-started standby, before running again.
func (m *Master) stepDownLocked(reason string) {
	if m.role != roleLeader {
		return
	}
	m.role = roleStandby
	m.fastElect = false
	// The journal buffer written while leading is this master's own
	// lineage — offsets into it mean nothing to the new leader. Restart
	// the mirror from scratch (the catalog keeps serving as a shadow
	// view) and reopen it to pushes and tails.
	m.journal.resetMirror()
	m.journal.setMirroring(true)
	m.leaderID, m.leaderAddr = "", ""
	m.electionGrace = m.now().Add(m.leaseDuration())
	m.cStepdowns.Inc()
	m.gLeader.Set(0)
	m.o.Emit("stepdown", map[string]string{"master": m.id, "reason": reason})
}

// peerAddr returns the wire address of a master peer ("" in-process).
func (m *Master) peerAddr(id string) string {
	for _, p := range m.opts.Peers {
		if p.ID == id {
			return p.Addr
		}
	}
	return ""
}
