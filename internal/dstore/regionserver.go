package dstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pstorm/internal/hstore"
	"pstorm/internal/obs"
)

// RegionServer hosts a subset of regions on an embedded hstore.Server
// and replicates writes synchronously to its followers. It is the unit
// the master assigns regions to, fails over, and rebalances.
type RegionServer struct {
	id  string
	hs  *hstore.Server
	reg *Registry

	mu        sync.RWMutex
	followers map[string][]Peer // regionKey -> follower peers

	stopped atomic.Bool
	hbStop  chan struct{}
	hbOnce  sync.Once

	// masterEpoch is the highest master epoch seen on any fenced
	// control RPC. Calls stamped with a lower (non-zero) epoch come
	// from a deposed leader and are rejected with ErrStaleMaster — the
	// region-server half of control-plane fencing.
	masterEpoch atomic.Int64

	// now feeds the latency histograms (default time.Now); tests
	// inject a fake clock, mirroring MasterOptions.Now.
	now func() time.Time

	o            *obs.Registry
	hPutMs       *obs.Histogram
	hGetMs       *obs.Histogram
	hReplMs      *obs.Histogram
	cNotServing  *obs.Counter
	cReplCells   *obs.Counter
	cApplies     *obs.Counter
	cHeartbeats  *obs.Counter
	cRejoins     *obs.Counter
	cStaleMaster *obs.Counter
}

// NewRegionServer creates a region server with an empty store. Auto
// split is disabled: region boundaries belong to the master's catalog.
func NewRegionServer(id string, reg *Registry) *RegionServer {
	hs := hstore.NewServer()
	hs.NoAutoSplit = true
	o := obs.NewRegistry()
	rs := &RegionServer{
		id:           id,
		hs:           hs,
		reg:          reg,
		followers:    make(map[string][]Peer),
		hbStop:       make(chan struct{}),
		now:          time.Now,
		o:            o,
		hPutMs:       o.Histogram("dstore_rs_put_latency_ms", nil, "server", id),
		hGetMs:       o.Histogram("dstore_rs_get_latency_ms", nil, "server", id),
		hReplMs:      o.Histogram("dstore_rs_replication_latency_ms", nil, "server", id),
		cNotServing:  o.Counter("dstore_rs_notserving_total", "server", id),
		cReplCells:   o.Counter("dstore_rs_replicated_cells_total", "server", id),
		cApplies:     o.Counter("dstore_rs_apply_total", "server", id),
		cHeartbeats:  o.Counter("dstore_rs_heartbeats_sent_total", "server", id),
		cRejoins:     o.Counter("dstore_rs_rejoins_total", "server", id),
		cStaleMaster: o.Counter("dstore_rs_stale_master_total", "server", id),
	}
	reg.Register(rs)
	return rs
}

// Obs exposes the server's metrics registry. The embedded hstore keeps
// its own (HStore().Obs()); snapshots merge both.
func (rs *RegionServer) Obs() *obs.Registry { return rs.o }

// sinceMs returns milliseconds elapsed since start on the server's
// clock, for latency histograms.
func (rs *RegionServer) sinceMs(start time.Time) float64 {
	return float64(rs.now().Sub(start)) / float64(time.Millisecond)
}

// countNotServing records a client-visible NotServing rejection.
func (rs *RegionServer) countNotServing(err error) error {
	if hstore.IsNotServing(err) {
		rs.cNotServing.Inc()
	}
	return err
}

// guard translates client-visible store errors. A CorruptionError means
// the embedded hstore just quarantined a region copy: the client sees
// NotServing (a retryable "route away from me"), while the master
// learns the real reason through Health and rebuilds the copy from a
// healthy replica. The corruption itself is already counted by the
// hstore's store_corruptions_detected_total. A missing table is the
// same story: the request was routed here by META, so the table exists
// cluster-wide and this server simply does not host it — the
// characteristic answer of a restarted-empty incarnation still named
// by a client's cached route. Both must read as "refresh and retry",
// never as a hard store error.
func (rs *RegionServer) guard(table, row string, err error) error {
	if hstore.IsCorruption(err) || errors.Is(err, hstore.ErrNoTable) {
		rs.cNotServing.Inc()
		return &hstore.NotServingError{Table: table, Row: row}
	}
	return rs.countNotServing(err)
}

// ID returns the server's identity.
func (rs *RegionServer) ID() string { return rs.id }

// SeenMasterEpoch returns the highest master epoch this server has
// fenced against (tests and operator status).
func (rs *RegionServer) SeenMasterEpoch() int64 { return rs.masterEpoch.Load() }

// HStore exposes the embedded store (tests and stats).
func (rs *RegionServer) HStore() *hstore.Server { return rs.hs }

// Stop simulates a crash: every subsequent operation — including
// replication traffic from primaries — fails until the process is
// replaced. There is no Start; a recovered node rejoins as a fresh
// server.
func (rs *RegionServer) Stop() {
	rs.stopped.Store(true)
	rs.hbOnce.Do(func() { close(rs.hbStop) })
}

// Stopped reports whether the server has been stopped.
func (rs *RegionServer) Stopped() bool { return rs.stopped.Load() }

func (rs *RegionServer) check() error {
	if rs.stopped.Load() {
		return fmt.Errorf("%s: %w", rs.id, errStopped)
	}
	return nil
}

// checkCtx is check plus the caller's liveness: a request whose context
// is already done fails before any store work starts.
func (rs *RegionServer) checkCtx(ctx context.Context) error {
	if err := rs.check(); err != nil {
		return err
	}
	return ctx.Err()
}

// StartHeartbeats sends heartbeats to the master every interval until
// the server stops. self is this server's peer identity, kept so the
// loop can re-register when a master stops recognizing it. Used by
// pstormd and background local clusters; deterministic tests call
// rs.Beat (or mc.Heartbeat) themselves.
func (rs *RegionServer) StartHeartbeats(mc MasterConn, self Peer, interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-rs.hbStop:
				return
			case <-t.C:
				rs.Beat(mc, self)
			}
		}
	}()
}

// Beat is one heartbeat round. Most errors are ignored — a missed beat
// is exactly what the master's liveness timeout exists to notice — but
// an unknown-server rejection means the master's catalog has no entry
// for this server at all (its Join was acked by a since-deposed leader
// and lost on failover), and no amount of heartbeating fixes that: the
// server re-issues Join to re-register, and resumes plain beats once
// registered.
func (rs *RegionServer) Beat(mc MasterConn, self Peer) {
	rs.cHeartbeats.Inc()
	err := mc.Heartbeat(rs.id)
	if err == nil || !errors.Is(err, ErrUnknownServer) {
		return
	}
	if err := mc.Join(self); err == nil {
		rs.cRejoins.Inc()
		rs.o.Emit("rejoin", map[string]string{"server": rs.id})
	}
}

func (rs *RegionServer) followersFor(table string, regionID int) []Peer {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	return rs.followers[regionKey(table, regionID)]
}

// replicate forwards stamped cells of one region to every follower,
// synchronously; an unreachable follower fails the write (the client
// retries while the master prunes the follower from the set).
func (rs *RegionServer) replicate(table string, regionID int, cells []hstore.Cell) error {
	followers := rs.followersFor(table, regionID)
	if len(followers) == 0 {
		return nil
	}
	start := rs.now()
	defer func() { rs.hReplMs.Observe(rs.sinceMs(start)) }()
	for _, p := range followers {
		conn, err := rs.reg.Resolve(p)
		if err != nil {
			return fmt.Errorf("%w: resolving follower %s: %v", errReplication, p.ID, err)
		}
		if err := conn.Apply(table, cells); err != nil {
			return fmt.Errorf("%w: region %d to %s: %v", errReplication, regionID, p.ID, err)
		}
		rs.cReplCells.Add(int64(len(cells)))
	}
	return nil
}

func (rs *RegionServer) regionIDFor(table, row string) (int, error) {
	me, ok := rs.hs.LookupRegion(table, row)
	if !ok {
		return 0, &hstore.NotServingError{Table: table, Row: row}
	}
	return me.RegionID, nil
}

// ackCheck guards the ack of a client write: if the owning region is no
// longer serving here, a concurrent move fenced and demoted this
// primary between the local write and now, and the replication fan-out
// may have missed the new primary (a flip clears the follower set, a
// full move exports before the cell landed). Returning NotServing makes
// the client retry against the new primary; the re-put is idempotent.
// Conversely, serving observed true here means the fence — which every
// move performs before export or follower rewiring — had not yet
// happened, so the local write and its replication fan-out both
// preceded it and the cells are in every surviving copy.
func (rs *RegionServer) ackCheck(table, row string) error {
	me, ok := rs.hs.LookupRegion(table, row)
	if !ok || !me.Serving {
		return &hstore.NotServingError{Table: table, Row: row}
	}
	return nil
}

// Put writes one cell to the primary copy and its followers.
func (rs *RegionServer) Put(ctx context.Context, table, row, column string, value []byte) error {
	if err := rs.checkCtx(ctx); err != nil {
		return err
	}
	start := rs.now()
	defer func() { rs.hPutMs.Observe(rs.sinceMs(start)) }()
	c, err := rs.hs.PutCell(table, row, column, value)
	if err != nil {
		return rs.guard(table, row, err)
	}
	id, err := rs.regionIDFor(table, row)
	if err != nil {
		return rs.countNotServing(err)
	}
	if err := rs.replicate(table, id, []hstore.Cell{c}); err != nil {
		return err
	}
	return rs.countNotServing(rs.ackCheck(table, row))
}

// BatchPut writes whole rows, one replication round per touched region.
// Rows are applied in order; on error, earlier rows of the batch may
// already be applied — the routing client simply retries the batch
// (re-puts are idempotent: same columns, newer timestamps).
func (rs *RegionServer) BatchPut(ctx context.Context, table string, rows []hstore.Row) error {
	if err := rs.checkCtx(ctx); err != nil {
		return err
	}
	start := rs.now()
	defer func() { rs.hPutMs.Observe(rs.sinceMs(start)) }()
	perRegion := make(map[int][]hstore.Cell)
	for _, r := range rows {
		id, err := rs.regionIDFor(table, r.Key)
		if err != nil {
			return rs.countNotServing(err)
		}
		cols := make([]string, 0, len(r.Columns))
		for c := range r.Columns {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, col := range cols {
			c, err := rs.hs.PutCell(table, r.Key, col, r.Columns[col])
			if err != nil {
				return rs.guard(table, r.Key, err)
			}
			perRegion[id] = append(perRegion[id], c)
		}
	}
	ids := make([]int, 0, len(perRegion))
	for id := range perRegion {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := rs.replicate(table, id, perRegion[id]); err != nil {
			return err
		}
	}
	for _, id := range ids {
		if err := rs.ackCheck(table, perRegion[id][0].Row); err != nil {
			return rs.countNotServing(err)
		}
	}
	return nil
}

// Apply receives replicated cells from a primary (or a snapshot
// backfill) and applies them to the local — typically fenced — copy.
func (rs *RegionServer) Apply(table string, cells []hstore.Cell) error {
	if err := rs.check(); err != nil {
		return err
	}
	rs.cApplies.Inc()
	return rs.hs.Apply(table, cells)
}

// Get reads one row from a serving (primary) copy.
func (rs *RegionServer) Get(ctx context.Context, table, row string) (hstore.Row, bool, error) {
	if err := rs.checkCtx(ctx); err != nil {
		return hstore.Row{}, false, err
	}
	start := rs.now()
	defer func() { rs.hGetMs.Observe(rs.sinceMs(start)) }()
	r, ok, err := rs.hs.Get(table, row)
	return r, ok, rs.guard(table, row, err)
}

// FollowerGet reads one row from this server regardless of the serving
// fence — the hedged-read path. Synchronous replication guarantees a
// follower copy holds every acked write, so the answer is as good as
// the primary's (modulo a write racing the hedge, which the primary
// read also races).
func (rs *RegionServer) FollowerGet(ctx context.Context, table, row string) (hstore.Row, bool, error) {
	if err := rs.checkCtx(ctx); err != nil {
		return hstore.Row{}, false, err
	}
	start := rs.now()
	defer func() { rs.hGetMs.Observe(rs.sinceMs(start)) }()
	r, ok, err := rs.hs.GetAny(table, row)
	return r, ok, rs.guard(table, row, err)
}

// Health reports this server's self-diagnosis: region copies it has
// quarantined after checksum failures. The master polls it (outside
// its catalog lock) and rebuilds quarantined copies from healthy
// replicas.
func (rs *RegionServer) Health() (HealthReport, error) {
	if err := rs.check(); err != nil {
		return HealthReport{}, err
	}
	return HealthReport{Quarantined: rs.hs.Quarantined()}, nil
}

// BatchGet point-reads many rows in one request. Both result slices are
// aligned with the requested keys; any row failing (e.g. a region this
// server stopped serving) fails the whole batch, so the client retries
// the batch against fresh META.
func (rs *RegionServer) BatchGet(ctx context.Context, table string, rows []string) ([]hstore.Row, []bool, error) {
	if err := rs.checkCtx(ctx); err != nil {
		return nil, nil, err
	}
	start := rs.now()
	defer func() { rs.hGetMs.Observe(rs.sinceMs(start)) }()
	out := make([]hstore.Row, len(rows))
	found := make([]bool, len(rows))
	for i, row := range rows {
		// Checked per row: batch assembly is the long-running part, and
		// a departed caller should not pay for the remaining keys.
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		r, ok, err := rs.hs.Get(table, row)
		if err != nil {
			return nil, nil, rs.guard(table, row, err)
		}
		out[i], found[i] = r, ok
	}
	return out, found, nil
}

// Scan reads [start, end) of one region the caller believes this server
// is primary for. The region ID pins the route: if the region moved or
// is fenced, the scan fails NotServing instead of silently returning a
// subset.
func (rs *RegionServer) Scan(ctx context.Context, table string, regionID int, start, end string, f hstore.Filter, limit int) ([]hstore.Row, error) {
	if err := rs.checkCtx(ctx); err != nil {
		return nil, err
	}
	me, ok := rs.hs.LookupRegion(table, start)
	if !ok || me.RegionID != regionID || !me.Serving {
		rs.cNotServing.Inc()
		return nil, &hstore.NotServingError{Table: table, Row: start}
	}
	// Clamp to the region's bounds so the hstore coverage check sees a
	// fully hosted range.
	if start < me.StartKey {
		start = me.StartKey
	}
	if me.EndKey != "" && (end == "" || end > me.EndKey) {
		end = me.EndKey
	}
	rows, err := rs.hs.Scan(ctx, table, start, end, f, limit)
	if err != nil {
		return nil, rs.guard(table, start, err)
	}
	return rows, nil
}

// FollowerScan reads [start, end) of one hosted region regardless of
// the serving fence — the hedged-scan path. The region ID still pins
// the route (a moved region fails NotServing rather than returning a
// stale subset), and synchronous replication means the fenced copy
// holds every acked write, so the rows are as fresh as the primary's.
func (rs *RegionServer) FollowerScan(ctx context.Context, table string, regionID int, start, end string, f hstore.Filter, limit int) ([]hstore.Row, error) {
	if err := rs.checkCtx(ctx); err != nil {
		return nil, err
	}
	me, ok := rs.hs.LookupRegion(table, start)
	if !ok || me.RegionID != regionID {
		rs.cNotServing.Inc()
		return nil, &hstore.NotServingError{Table: table, Row: start}
	}
	if start < me.StartKey {
		start = me.StartKey
	}
	if me.EndKey != "" && (end == "" || end > me.EndKey) {
		end = me.EndKey
	}
	rows, err := rs.hs.ScanAny(ctx, table, start, end, f, limit)
	if err != nil {
		return nil, rs.guard(table, start, err)
	}
	return rows, nil
}

// DeleteRow tombstones every column of a row, replicating the
// tombstones so followers converge.
func (rs *RegionServer) DeleteRow(ctx context.Context, table, row string) error {
	if err := rs.checkCtx(ctx); err != nil {
		return err
	}
	r, ok, err := rs.hs.Get(table, row)
	if err != nil || !ok {
		return rs.guard(table, row, err)
	}
	id, err := rs.regionIDFor(table, row)
	if err != nil {
		return err
	}
	cols := make([]string, 0, len(r.Columns))
	for c := range r.Columns {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	cells := make([]hstore.Cell, 0, len(cols))
	for _, col := range cols {
		c, err := rs.hs.DeleteCell(table, row, col)
		if err != nil {
			return err
		}
		cells = append(cells, c)
	}
	if err := rs.replicate(table, id, cells); err != nil {
		return err
	}
	return rs.ackCheck(table, row)
}

// Flush flushes every hosted region of the table.
func (rs *RegionServer) Flush(table string) error {
	if err := rs.check(); err != nil {
		return err
	}
	return rs.hs.Flush(table)
}

// Stats returns the embedded store's transfer counters.
func (rs *RegionServer) Stats() (hstore.TransferStats, error) {
	if err := rs.check(); err != nil {
		return hstore.TransferStats{}, err
	}
	return rs.hs.Stats(), nil
}

// ResetStats zeroes the transfer counters.
func (rs *RegionServer) ResetStats() error {
	if err := rs.check(); err != nil {
		return err
	}
	rs.hs.ResetStats()
	return nil
}

// Install hosts a region from a snapshot (serving=true for a primary,
// false for a follower replica).
func (rs *RegionServer) Install(snap *hstore.RegionSnapshot, serving bool, masterEpoch int64) error {
	if err := rs.check(); err != nil {
		return err
	}
	if err := rs.fence(masterEpoch); err != nil {
		return err
	}
	return rs.hs.InstallRegion(snap, serving)
}

// fence enforces master-epoch monotonicity on control RPCs: epoch 0 is
// the unfenced legacy single-master case, a higher epoch is adopted,
// and a lower one is a deposed leader's write — rejected so a paused
// or partitioned old master cannot mutate placement after a standby
// promoted.
func (rs *RegionServer) fence(masterEpoch int64) error {
	if masterEpoch == 0 {
		return nil
	}
	for {
		cur := rs.masterEpoch.Load()
		if masterEpoch < cur {
			rs.cStaleMaster.Inc()
			return fmt.Errorf("%w: got epoch %d, have %d", ErrStaleMaster, masterEpoch, cur)
		}
		if masterEpoch == cur || rs.masterEpoch.CompareAndSwap(cur, masterEpoch) {
			return nil
		}
	}
}

// Export snapshots a hosted region for a move or re-replication.
func (rs *RegionServer) Export(table string, regionID int) (*hstore.RegionSnapshot, error) {
	if err := rs.check(); err != nil {
		return nil, err
	}
	return rs.hs.ExportRegion(table, regionID)
}

// Drop removes a hosted region and its follower set.
func (rs *RegionServer) Drop(table string, regionID int, masterEpoch int64) error {
	if err := rs.check(); err != nil {
		return err
	}
	if err := rs.fence(masterEpoch); err != nil {
		return err
	}
	rs.mu.Lock()
	delete(rs.followers, regionKey(table, regionID))
	rs.mu.Unlock()
	return rs.hs.DropRegion(table, regionID)
}

// SetServing fences or unfences a hosted region.
func (rs *RegionServer) SetServing(table string, regionID int, serving bool, masterEpoch int64) error {
	if err := rs.check(); err != nil {
		return err
	}
	if err := rs.fence(masterEpoch); err != nil {
		return err
	}
	return rs.hs.SetServing(table, regionID, serving)
}

// SetFollowers replaces the follower set this server replicates the
// region's writes to (master-driven).
func (rs *RegionServer) SetFollowers(table string, regionID int, followers []Peer, masterEpoch int64) error {
	if err := rs.check(); err != nil {
		return err
	}
	if err := rs.fence(masterEpoch); err != nil {
		return err
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(followers) == 0 {
		delete(rs.followers, regionKey(table, regionID))
	} else {
		rs.followers[regionKey(table, regionID)] = append([]Peer(nil), followers...)
	}
	return nil
}
