package dstore

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"pstorm/internal/hstore"
)

// testClock is an injectable, manually advanced clock for the master.
type testClock struct{ t time.Time }

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *testClock) now() time.Time                    { return c.t }
func (c *testClock) advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

// startCluster builds a deterministic (no background loops) cluster
// with n servers and replication 2, one table "t" split at the given
// keys, and returns it with its clock.
func startCluster(t *testing.T, n int, splits []string) (*LocalCluster, *testClock) {
	t.Helper()
	clock := newTestClock()
	c, err := StartLocalCluster(LocalOptions{Servers: n, Replication: 2, Splits: splits})
	if err != nil {
		t.Fatalf("StartLocalCluster: %v", err)
	}
	c.Master.opts.Now = clock.now
	t.Cleanup(c.Close)
	// Re-beat everyone so lastBeat moves from the real clock (used
	// during Join) onto the injected one.
	beatAll(t, c)
	if err := c.Client().CreateTable(context.Background(), "t"); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	return c, clock
}

// beatAll heartbeats every live server at the clock's current time.
func beatAll(t *testing.T, c *LocalCluster) {
	t.Helper()
	for _, rs := range c.Servers {
		if !rs.Stopped() {
			if err := c.Master.Heartbeat(rs.ID()); err != nil {
				t.Fatalf("Heartbeat(%s): %v", rs.ID(), err)
			}
		}
	}
}

func TestRoutingAcrossRegions(t *testing.T) {
	c, _ := startCluster(t, 3, []string{"g", "p"})
	cl := c.Client()
	keys := []string{"alpha", "golf", "papa", "zulu", "g", "p"}
	for i, k := range keys {
		if err := cl.Put(context.Background(), "t", k, "c", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	for i, k := range keys {
		r, ok, err := cl.Get(context.Background(), "t", k)
		if err != nil || !ok {
			t.Fatalf("Get(%q): ok=%v err=%v", k, ok, err)
		}
		if want := fmt.Sprintf("v%d", i); string(r.Columns["c"]) != want {
			t.Fatalf("Get(%q) = %q, want %q", k, r.Columns["c"], want)
		}
	}
	// The three regions must land on three distinct primaries.
	m, err := cl.Meta()
	if err != nil {
		t.Fatal(err)
	}
	prim := map[string]bool{}
	for _, g := range m.Tables["t"] {
		prim[g.Primary] = true
	}
	if len(prim) != 3 {
		t.Fatalf("expected 3 distinct primaries, got %v", prim)
	}
	// Cross-region scan sees all rows in key order.
	rows, err := cl.Scan(context.Background(), "t", "", "", nil, 0)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(rows) != len(keys) {
		t.Fatalf("Scan returned %d rows, want %d", len(rows), len(keys))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Key >= rows[i].Key {
			t.Fatalf("scan out of order: %q then %q", rows[i-1].Key, rows[i].Key)
		}
	}
}

func TestReplicationKeepsFollowersInSync(t *testing.T) {
	c, _ := startCluster(t, 3, []string{"m"})
	cl := c.Client()
	for i := 0; i < 20; i++ {
		if err := cl.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), "c", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := cl.Meta()
	for _, g := range m.Tables["t"] {
		snapP, err := c.Server(g.Primary).Export("t", g.ID)
		if err != nil {
			t.Fatalf("export primary %s: %v", g.Primary, err)
		}
		for _, f := range g.Followers {
			snapF, err := c.Server(f).Export("t", g.ID)
			if err != nil {
				t.Fatalf("export follower %s: %v", f, err)
			}
			if len(snapF.Cells) != len(snapP.Cells) {
				t.Fatalf("region %d: follower %s has %d cells, primary %s has %d",
					g.ID, f, len(snapF.Cells), g.Primary, len(snapP.Cells))
			}
			for i := range snapP.Cells {
				p, q := snapP.Cells[i], snapF.Cells[i]
				if p.Row != q.Row || p.Column != q.Column || p.Ts != q.Ts || string(p.Value) != string(q.Value) {
					t.Fatalf("region %d cell %d: primary %+v != follower %+v", g.ID, i, p, q)
				}
			}
		}
	}
}

func TestFailoverPromotesFollowerNoLostWrites(t *testing.T) {
	c, clock := startCluster(t, 3, []string{"m"})
	cl := c.Client()
	cl.RetryBase = time.Microsecond

	const n = 60
	for i := 0; i < n; i++ {
		if err := cl.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), "c", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := cl.Meta()
	victim := m.Tables["t"][0].Primary
	epoch0 := m.Epoch

	// Crash the primary of the first region; everyone else keeps beating.
	if !c.KillServer(victim) {
		t.Fatalf("KillServer(%s) found nothing to kill", victim)
	}
	clock.advance(3 * time.Second)
	beatAll(t, c)
	died := c.Master.CheckLiveness(clock.advance(0))
	if len(died) != 1 || died[0] != victim {
		t.Fatalf("CheckLiveness declared %v dead, want [%s]", died, victim)
	}

	// Every write must still be readable through the promoted follower.
	for i := 0; i < n; i++ {
		r, ok, err := cl.Get(context.Background(), "t", fmt.Sprintf("k%02d", i))
		if err != nil || !ok {
			t.Fatalf("Get(k%02d) after failover: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("v%d", i); string(r.Columns["c"]) != want {
			t.Fatalf("k%02d = %q, want %q", i, r.Columns["c"], want)
		}
	}
	m2, _ := cl.Meta()
	if m2.Epoch <= epoch0 {
		t.Fatalf("epoch did not advance on failover: %d -> %d", epoch0, m2.Epoch)
	}
	for _, g := range m2.Tables["t"] {
		if g.Primary == victim {
			t.Fatalf("region %d still assigned to dead server %s", g.ID, victim)
		}
		for _, f := range g.Followers {
			if f == victim {
				t.Fatalf("region %d still lists dead follower %s", g.ID, victim)
			}
		}
	}
	if cl.Retries() == 0 {
		t.Fatal("expected the client to have retried through the failover")
	}

	// Re-replication: with 2 live servers and replication 2, every
	// region must have one follower again, holding the full data set.
	for _, g := range m2.Tables["t"] {
		if len(g.Followers) != 1 {
			t.Fatalf("region %d not re-replicated: followers=%v", g.ID, g.Followers)
		}
		snapP, err := c.Server(g.Primary).Export("t", g.ID)
		if err != nil {
			t.Fatal(err)
		}
		snapF, err := c.Server(g.Followers[0]).Export("t", g.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(snapF.Cells) != len(snapP.Cells) {
			t.Fatalf("region %d re-replica has %d cells, primary %d", g.ID, len(snapF.Cells), len(snapP.Cells))
		}
	}

	// New writes keep flowing after failover.
	if err := cl.Put(context.Background(), "t", "post-failover", "c", []byte("x")); err != nil {
		t.Fatalf("Put after failover: %v", err)
	}
}

func TestFailoverWithNoLiveCopyLeavesRegionRetrying(t *testing.T) {
	clock := newTestClock()
	c, err := StartLocalCluster(LocalOptions{Servers: 2, Replication: 1, Splits: []string{"m"}})
	if err != nil {
		t.Fatal(err)
	}
	c.Master.opts.Now = clock.now
	t.Cleanup(c.Close)
	beatAll(t, c)
	cl := c.Client()
	cl.RetryBase = time.Microsecond
	cl.MaxAttempts = 3
	if err := cl.CreateTable(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(context.Background(), "t", "a", "c", []byte("v")); err != nil {
		t.Fatal(err)
	}
	m, _ := cl.Meta()
	victim := m.Tables["t"][0].Primary
	c.KillServer(victim)
	clock.advance(3 * time.Second)
	beatAll(t, c)
	c.Master.CheckLiveness(clock.advance(0))

	// Replication 1: the region has no copy left. The op must fail after
	// exhausting retries, not hang or panic.
	if _, _, err := cl.Get(context.Background(), "t", "a"); err == nil {
		t.Fatal("expected Get against a lost region to fail")
	} else if !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMoveRegionFullAndFlip(t *testing.T) {
	c, _ := startCluster(t, 3, []string{"m"})
	cl := c.Client()
	cl.RetryBase = time.Microsecond
	for i := 0; i < 30; i++ {
		if err := cl.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), "c", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := cl.Meta()
	g := m.Tables["t"][0]

	// Flip to the existing follower: zero bytes shipped.
	flipTo := g.Followers[0]
	n, err := c.Master.MoveRegion("t", g.ID, flipTo)
	if err != nil {
		t.Fatalf("flip move: %v", err)
	}
	if n != 0 {
		t.Fatalf("promotion flip shipped %d bytes, want 0", n)
	}
	m2 := c.Master.Meta()
	if got := m2.Tables["t"][0].Primary; got != flipTo {
		t.Fatalf("primary after flip = %s, want %s", got, flipTo)
	}

	// Full move to the server holding no copy: bytes > 0.
	var third string
	for _, rs := range c.Servers {
		if rs.ID() != m2.Tables["t"][0].Primary && rs.ID() != m2.Tables["t"][0].Followers[0] {
			third = rs.ID()
		}
	}
	n, err = c.Master.MoveRegion("t", g.ID, third)
	if err != nil {
		t.Fatalf("full move: %v", err)
	}
	if n <= 0 {
		t.Fatalf("full move shipped %d bytes, want > 0", n)
	}
	// All rows must still be readable after both moves.
	for i := 0; i < 30; i++ {
		if _, ok, err := cl.Get(context.Background(), "t", fmt.Sprintf("k%02d", i)); err != nil || !ok {
			t.Fatalf("Get(k%02d) after moves: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestRebalanceEvensPrimaries(t *testing.T) {
	// 2 servers, 4 regions; then a third server joins empty and
	// Rebalance must shed load onto it.
	c, _ := startCluster(t, 2, []string{"f", "m", "t"})
	cl := c.Client()
	cl.RetryBase = time.Microsecond
	for i := 0; i < 40; i++ {
		if err := cl.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), "c", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	rs := NewRegionServer("rs-new", c.Reg)
	c.Servers = append(c.Servers, rs)
	if err := c.Master.Join(Peer{ID: rs.ID()}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Master.Rebalance(); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	counts := map[string]int{}
	m := c.Master.Meta()
	for _, g := range m.Tables["t"] {
		counts[g.Primary]++
	}
	max, min := 0, 1<<30
	for _, rs := range c.Servers {
		n := counts[rs.ID()]
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	if max-min > 1 {
		t.Fatalf("rebalance left skew %v", counts)
	}
	for i := 0; i < 40; i++ {
		if _, ok, err := cl.Get(context.Background(), "t", fmt.Sprintf("k%02d", i)); err != nil || !ok {
			t.Fatalf("Get(k%02d) after rebalance: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestBatchPutGroupsAndSurvivesMove(t *testing.T) {
	c, _ := startCluster(t, 3, []string{"m"})
	cl := c.Client()
	cl.RetryBase = time.Microsecond

	var rows []hstore.Row
	for i := 0; i < 50; i++ {
		rows = append(rows, hstore.Row{
			Key:     fmt.Sprintf("k%02d", i),
			Columns: map[string][]byte{"a": []byte("1"), "b": []byte("2")},
		})
	}
	if err := cl.BatchPut(context.Background(), "t", rows); err != nil {
		t.Fatalf("BatchPut: %v", err)
	}

	// Stale META: move a region, then batch again without refreshing.
	m, _ := cl.Meta()
	g := m.Tables["t"][0]
	if _, err := c.Master.MoveRegion("t", g.ID, g.Followers[0]); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		rows[i].Columns = map[string][]byte{"a": []byte("3"), "b": []byte("4")}
	}
	if err := cl.BatchPut(context.Background(), "t", rows); err != nil {
		t.Fatalf("BatchPut after move: %v", err)
	}
	for i := 0; i < 50; i++ {
		r, ok, err := cl.Get(context.Background(), "t", fmt.Sprintf("k%02d", i))
		if err != nil || !ok {
			t.Fatalf("Get(k%02d): ok=%v err=%v", i, ok, err)
		}
		if string(r.Columns["a"]) != "3" || string(r.Columns["b"]) != "4" {
			t.Fatalf("k%02d = %v, want updated values", i, r.Columns)
		}
	}
	if cl.Retries() == 0 {
		t.Fatal("expected a stale-route retry after the move")
	}
}

func TestScanRestartsOnStaleRoute(t *testing.T) {
	c, _ := startCluster(t, 3, []string{"m"})
	cl := c.Client()
	cl.RetryBase = time.Microsecond
	for i := 0; i < 30; i++ {
		if err := cl.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), "c", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cl.Meta() //nolint:errcheck — warm the cache so the move makes it stale
	m, _ := cl.Meta()
	g := m.Tables["t"][1] // region ["m", "") holds nothing; move region 0's sibling
	g = m.Tables["t"][0]
	var third string
	holds := map[string]bool{g.Primary: true}
	for _, f := range g.Followers {
		holds[f] = true
	}
	for _, rs := range c.Servers {
		if !holds[rs.ID()] {
			third = rs.ID()
		}
	}
	if _, err := c.Master.MoveRegion("t", g.ID, third); err != nil {
		t.Fatal(err)
	}
	rows, err := cl.Scan(context.Background(), "t", "", "", nil, 0)
	if err != nil {
		t.Fatalf("Scan after move: %v", err)
	}
	if len(rows) != 30 {
		t.Fatalf("Scan returned %d rows, want 30 (no partial results)", len(rows))
	}
	if cl.Retries() == 0 {
		t.Fatal("expected the scan to restart on the stale route")
	}
}

func TestDeleteRowReplicates(t *testing.T) {
	c, _ := startCluster(t, 3, []string{"m"})
	cl := c.Client()
	if err := cl.Put(context.Background(), "t", "doomed", "c", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteRow(context.Background(), "t", "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cl.Get(context.Background(), "t", "doomed"); err != nil || ok {
		t.Fatalf("row survived delete: ok=%v err=%v", ok, err)
	}
	// The tombstone must be replicated: promote the follower and the row
	// must stay gone.
	m, _ := cl.Meta()
	var g RegionInfo
	for _, cand := range m.Tables["t"] {
		if cand.StartKey == "" {
			g = cand
		}
	}
	if _, err := c.Master.MoveRegion("t", g.ID, g.Followers[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cl.Get(context.Background(), "t", "doomed"); err != nil || ok {
		t.Fatalf("row resurrected on follower: ok=%v err=%v", ok, err)
	}
}

func TestStatsAggregateAndReset(t *testing.T) {
	c, _ := startCluster(t, 2, []string{"m"})
	cl := c.Client()
	for i := 0; i < 10; i++ {
		if err := cl.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), "c", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Scan(context.Background(), "t", "", "", nil, 0); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsReturned < 10 {
		t.Fatalf("RowsReturned = %d, want >= 10", st.RowsReturned)
	}
	if err := cl.ResetStats(); err != nil {
		t.Fatal(err)
	}
	st, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsReturned != 0 || st.RowsScanned != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}
