package dstore

import (
	"errors"
	"sync"
	"time"

	"pstorm/internal/obs"
)

// errBreakerOpen marks an operation rejected locally because the
// target server's circuit breaker is open: recent calls to it failed
// at the transport level, so the client stops hammering it for a
// cooldown instead of burning a full timeout per attempt. It is
// retryable — the retry loop refreshes META (the master may have
// failed the server over already) and backs off, and the breaker
// half-opens after the cooldown to probe for recovery.
var errBreakerOpen = errors.New("dstore: circuit breaker open")

// Breaker states, exported to the breaker_state gauge per server.
const (
	breakerClosed   = 0 // normal operation
	breakerOpen     = 1 // rejecting calls until the cooldown elapses
	breakerHalfOpen = 2 // one probe in flight decides open vs closed
)

// breaker is a per-server circuit breaker. Only transport-class
// failures (dead server, network error, injected fault) trip it: an
// application-level answer such as NotServing proves the server is
// alive, so it closes the breaker like a success. The clock is
// injected so chaos tests drive state transitions deterministically.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	gauge     *obs.Gauge

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool
}

// allow reports whether a call to the server may proceed. In the open
// state it flips to half-open once the cooldown has elapsed and admits
// exactly one probe; concurrent callers are rejected until the probe
// reports back.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.gauge.Set(breakerHalfOpen)
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record reports the outcome of an admitted call. failed means a
// transport-class failure; anything the server actually answered —
// including errors — counts as proof of life and closes the breaker.
func (b *breaker) record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if !failed {
		if b.state != breakerClosed {
			b.gauge.Set(breakerClosed)
		}
		b.state = breakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.gauge.Set(breakerOpen)
	}
}

// breakerFailure classifies err for the breaker: true only for
// failures that mean "the server did not answer".
func breakerFailure(err error) bool {
	return errors.Is(err, errStopped) ||
		errors.Is(err, errTransport) ||
		errors.Is(err, ErrInjected)
}
