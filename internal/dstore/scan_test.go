package dstore

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"pstorm/internal/hstore"
)

// seedScanRows spreads rows across every region of the default split
// layout and returns the table to a flushed state so scans exercise
// the sstable block iterators, not just the memstore.
func seedScanRows(t *testing.T, cl *Client) {
	t.Helper()
	for _, ftype := range []string{"costmap", "dyn", "meta", "stat"} {
		for i := 0; i < 12; i++ {
			row := fmt.Sprintf("%s/j%02d", ftype, i)
			if err := cl.Put(context.Background(), "t", row, "c", []byte(fmt.Sprintf("v-%d", i%4))); err != nil {
				t.Fatal(err)
			}
			if err := cl.Put(context.Background(), "t", row, "d", []byte(fmt.Sprintf("aux-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.Flush("t"); err != nil {
		t.Fatal(err)
	}
}

// TestScanParallelMatchesSequential: the fan-out scan must be
// bit-identical to the sequential region walk at any parallelism, for
// any combination of range, limit, and filter.
func TestScanParallelMatchesSequential(t *testing.T) {
	c, _ := startCluster(t, 3, nil)
	cl := c.Client()
	seedScanRows(t, cl)

	cases := []struct {
		name       string
		start, end string
		f          hstore.Filter
		limit      int
	}{
		{name: "full", start: "", end: ""},
		{name: "range", start: "dyn", end: "statzz"},
		{name: "limit_small", limit: 5},
		{name: "limit_cross_region", limit: 17},
		{name: "limit_over", limit: 1000},
		{name: "prefix_filter", f: &hstore.PrefixFilter{Prefix: "meta/"}},
		{name: "column_filter", f: &hstore.ColumnEqualsFilter{Column: "c", Value: "v-3"}},
		{name: "filter_and_limit", f: &hstore.ColumnEqualsFilter{Column: "c", Value: "v-1"}, limit: 4},
	}
	for _, tc := range cases {
		cl.ScanParallelism = 1
		want, err := cl.Scan(context.Background(), "t", tc.start, tc.end, tc.f, tc.limit)
		if err != nil {
			t.Fatalf("%s: sequential scan: %v", tc.name, err)
		}
		if tc.name == "full" && len(want) != 48 {
			t.Fatalf("seed scan saw %d rows, want 48", len(want))
		}
		for _, par := range []int{2, 3, 8} {
			cl.ScanParallelism = par
			got, err := cl.Scan(context.Background(), "t", tc.start, tc.end, tc.f, tc.limit)
			if err != nil {
				t.Fatalf("%s/par=%d: %v", tc.name, par, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/par=%d: parallel scan diverges from sequential:\n got %v\nwant %v",
					tc.name, par, got, want)
			}
		}
	}
	if fan, ok := cl.Obs().Snapshot().Histograms["scan_parallel_fanout"]; !ok || fan.Count == 0 {
		t.Error("scan_parallel_fanout never observed")
	}
}

// movingConn yanks a region out from under the first scan RPC that
// targets it: the master promotes the follower (fencing the old
// primary) just before the RPC is forwarded, so the in-flight scan
// hits a fenced region and must restart from fresh meta.
type movingConn struct {
	ServerConn
	c      *LocalCluster
	once   *sync.Once
	region int
	moveTo string
	fail   func(string)
}

func (m *movingConn) Scan(ctx context.Context, table string, regionID int, start, end string, f hstore.Filter, limit int) ([]hstore.Row, error) {
	if regionID == m.region {
		m.once.Do(func() {
			if _, err := m.c.Master.MoveRegion(table, m.region, m.moveTo); err != nil {
				m.fail(fmt.Sprintf("mid-scan MoveRegion: %v", err))
			}
		})
	}
	return m.ServerConn.Scan(ctx, table, regionID, start, end, f, limit)
}

// TestScanRestartsOnMidScanRegionMove: a region move between the meta
// read and the per-region RPC must surface as a whole-scan restart,
// and the restarted scan must return the complete ordered result.
func TestScanRestartsOnMidScanRegionMove(t *testing.T) {
	c, _ := startCluster(t, 3, nil)
	cl := c.Client()
	seedScanRows(t, cl)

	want, err := cl.Scan(context.Background(), "t", "", "", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := cl.Meta()
	g, err := cl.routeIn(m, "t", "meta/j00")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Followers) == 0 {
		t.Fatal("region has no follower to promote")
	}
	var once sync.Once
	var mu sync.Mutex
	var failMsg string
	c.Reg.WrapConn = func(id string, conn ServerConn) ServerConn {
		return &movingConn{
			ServerConn: conn, c: c, once: &once,
			region: g.ID, moveTo: g.Followers[0],
			fail: func(msg string) { mu.Lock(); failMsg = msg; mu.Unlock() },
		}
	}
	before := cl.Retries()

	got, err := cl.Scan(context.Background(), "t", "", "", nil, 0)
	if err != nil {
		t.Fatalf("scan across region move: %v", err)
	}
	mu.Lock()
	if failMsg != "" {
		t.Fatal(failMsg)
	}
	mu.Unlock()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restarted scan diverges: got %d rows, want %d", len(got), len(want))
	}
	if cl.Retries() == before {
		t.Error("scan over a moved region completed without a restart")
	}
}

// Scan on slowConn mirrors its Get: the straggling primary a hedged
// scan exists to cover.
func (s *slowConn) Scan(ctx context.Context, table string, regionID int, start, end string, f hstore.Filter, limit int) ([]hstore.Row, error) {
	time.Sleep(s.delay)
	return s.ServerConn.Scan(ctx, table, regionID, start, end, f, limit)
}

// TestHedgedScanCoversSlowPrimary: with one region's primary answering
// slowly, an armed hedge fires a fence-bypassing follower scan and the
// full result still comes back correct.
func TestHedgedScanCoversSlowPrimary(t *testing.T) {
	c, _ := startCluster(t, 2, nil)
	cl := c.Client()
	seedScanRows(t, cl)

	want, err := cl.Scan(context.Background(), "t", "", "", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := cl.Meta()
	g, err := cl.routeIn(m, "t", "dyn/j00")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Followers) == 0 {
		t.Fatal("region has no follower to hedge against")
	}
	slow := g.Primary
	c.Reg.WrapConn = func(id string, conn ServerConn) ServerConn {
		if id == slow {
			return &slowConn{ServerConn: conn, delay: 300 * time.Millisecond}
		}
		return conn
	}
	cl.HedgeDelay = 5 * time.Millisecond

	got, err := cl.Scan(context.Background(), "t", "", "", nil, 0)
	if err != nil {
		t.Fatalf("hedged scan: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("hedged scan diverges: got %d rows, want %d", len(got), len(want))
	}
	if n := cl.Obs().Snapshot().Counters["hedged_scans_total"]; n == 0 {
		t.Error("hedged scan not counted")
	}
}
