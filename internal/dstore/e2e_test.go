package dstore

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pstorm/internal/cluster"
	"pstorm/internal/core"
	"pstorm/internal/engine"
	"pstorm/internal/workloads"
)

// TestEndToEndFailover is the acceptance scenario of the distributed
// store: a master plus three region servers host the real PStorM
// profile table; over a hundred profiles go in through the routing
// client; the primary of the meta region is killed; and the matcher
// must still resolve probes through the promoted follower with zero
// lost rows.
func TestEndToEndFailover(t *testing.T) {
	clock := newTestClock()
	c, err := StartLocalCluster(LocalOptions{Servers: 3, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Master.opts.Now = clock.now
	t.Cleanup(c.Close)
	beatAll(t, c)
	cl := c.Client()
	cl.RetryBase = time.Microsecond

	st, err := core.NewStore(context.Background(), cl)
	if err != nil {
		t.Fatalf("NewStore over dstore client: %v", err)
	}
	eng := engine.New(cluster.Default16(), 42)
	sys := core.NewSystem(st, eng)

	// Seed real profiles: one profiled submission (the Fig 1.2 workflow
	// against the distributed store), then clones under fresh job IDs
	// until the store holds well over 100 profiles.
	job := workloads.CoOccurrencePairs(2)
	ds, err := workloads.DatasetByName("randomtext-1g")
	if err != nil {
		t.Fatal(err)
	}
	first, err := sys.Submit(context.Background(), job, ds, core.TuneOptions{})
	if err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	if first.Tuned || !first.ProfileStored {
		t.Fatalf("first submission should run profiled and store: %+v", first)
	}
	base, err := st.LoadProfile(context.Background(), first.StoredProfileID)
	if err != nil {
		t.Fatal(err)
	}
	const clones = 110
	for i := 0; i < clones; i++ {
		q := *base
		q.JobID = fmt.Sprintf("%s-clone-%03d", base.JobID, i)
		if err := st.PutProfile(context.Background(), &q); err != nil {
			t.Fatalf("PutProfile clone %d: %v", i, err)
		}
	}
	want := clones + 1
	if n, err := st.Len(context.Background()); err != nil || n != want {
		t.Fatalf("store holds %d profiles (err=%v), want %d", n, err, want)
	}

	// The matcher must find a profile for a fresh sample before the
	// fault, establishing the baseline.
	sample, _, err := eng.CollectSample(job, ds, core.DefaultConfig(job), 1)
	if err != nil {
		t.Fatal(err)
	}
	sample.InputBytes = ds.NominalBytes
	res, err := sys.Matcher.Match(context.Background(), st, sample)
	if err != nil {
		t.Fatalf("Match before failover: %v", err)
	}
	if !res.Matched() {
		t.Fatal("matcher found nothing before failover")
	}

	// Kill the primary of the region holding the meta rows (the
	// serialized profiles the matcher loads), then drive failover.
	m := c.Master.Meta()
	var victim string
	for _, g := range m.Tables[core.TableName] {
		if g.StartKey <= "meta/x" && (g.EndKey == "" || "meta/x" < g.EndKey) {
			victim = g.Primary
		}
	}
	if victim == "" {
		t.Fatal("no region found for meta rows")
	}
	if !c.KillServer(victim) {
		t.Fatalf("KillServer(%s)", victim)
	}
	clock.advance(3 * time.Second)
	beatAll(t, c)
	if died := c.Master.CheckLiveness(clock.advance(0)); len(died) != 1 || died[0] != victim {
		t.Fatalf("CheckLiveness declared %v dead, want [%s]", died, victim)
	}

	// Zero lost rows: the store still holds every profile...
	if n, err := st.Len(context.Background()); err != nil || n != want {
		t.Fatalf("after failover the store holds %d profiles (err=%v), want %d", n, err, want)
	}
	// ...every clone's serialized profile still loads...
	for i := 0; i < clones; i += 7 {
		id := fmt.Sprintf("%s-clone-%03d", base.JobID, i)
		p, err := st.LoadProfile(context.Background(), id)
		if err != nil {
			t.Fatalf("LoadProfile(%s) after failover: %v", id, err)
		}
		if p.JobID != id {
			t.Fatalf("LoadProfile(%s) returned job %s", id, p.JobID)
		}
	}
	// ...and the matcher still resolves probes through the promoted
	// follower.
	res, err = sys.Matcher.Match(context.Background(), st, sample)
	if err != nil {
		t.Fatalf("Match after failover: %v", err)
	}
	if !res.Matched() {
		t.Fatal("matcher found nothing after failover")
	}
	if _, err := st.LoadProfile(context.Background(), res.MapJobID); err != nil {
		t.Fatalf("loading matched profile %s: %v", res.MapJobID, err)
	}
}

// TestConcurrentClientOpsDuringMoves races writers and scanners through
// the routing client against a master that keeps moving regions between
// servers. Every acked write must be readable afterwards and the
// clients must have recovered from NotServing via retry (not silently
// dropped work).
func TestConcurrentClientOpsDuringMoves(t *testing.T) {
	c, _ := startCluster(t, 3, []string{"g", "p"})
	cl := c.Client()
	cl.RetryBase = time.Microsecond

	const writers, perWriter = 4, 120
	var wg sync.WaitGroup
	errs := make(chan error, writers+2)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-%04d", w, i)
				if err := cl.Put(context.Background(), "t", key, "c", []byte(key)); err != nil {
					errs <- fmt.Errorf("put %s: %w", key, err)
					return
				}
			}
		}(w)
	}

	// Scanners run alongside; a scan may restart on a stale route but
	// must never error out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := cl.Scan(context.Background(), "t", "", "", nil, 0); err != nil {
				errs <- fmt.Errorf("scan: %w", err)
				return
			}
		}
	}()

	// The mover shuttles every region between its primary's peers for
	// the duration of the writes.
	stop := make(chan struct{})
	var moverWG sync.WaitGroup
	moverWG.Add(1)
	go func() {
		defer moverWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m := c.Master.Meta()
			for _, g := range m.Tables["t"] {
				target := c.Servers[(i+g.ID)%len(c.Servers)].ID()
				if target == g.Primary {
					continue
				}
				if _, err := c.Master.MoveRegion("t", g.ID, target); err != nil {
					errs <- fmt.Errorf("move region %d to %s: %w", g.ID, target, err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	moverWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	rows, err := cl.Scan(context.Background(), "t", "", "", nil, 0)
	if err != nil {
		t.Fatalf("final scan: %v", err)
	}
	if len(rows) != writers*perWriter {
		t.Fatalf("found %d rows after concurrent moves, want %d (lost writes)", len(rows), writers*perWriter)
	}
	for _, r := range rows {
		if string(r.Columns["c"]) != r.Key {
			t.Fatalf("row %s holds %q", r.Key, r.Columns["c"])
		}
	}

	// Force one guaranteed stale route: warm the cache, move the region
	// under a known key, and write through the now-stale view. The
	// client must recover via retry-after-NotServing, never drop the op.
	if _, err := cl.Meta(); err != nil {
		t.Fatal(err)
	}
	m := c.Master.Meta()
	var g RegionInfo
	for _, cand := range m.Tables["t"] {
		if cand.StartKey <= "w0-0000" && (cand.EndKey == "" || "w0-0000" < cand.EndKey) {
			g = cand
		}
	}
	var target string
	for _, rs := range c.Servers {
		if rs.ID() != g.Primary {
			target = rs.ID()
			break
		}
	}
	before := cl.Retries()
	if _, err := c.Master.MoveRegion("t", g.ID, target); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(context.Background(), "t", "w0-0000", "c", []byte("w0-0000")); err != nil {
		t.Fatalf("put through stale route: %v", err)
	}
	if cl.Retries() == before {
		t.Fatal("expected a retry-after-NotServing on the stale route")
	}
}
