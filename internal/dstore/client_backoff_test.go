package dstore

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffScheduleBounded pins the deterministic envelope of the
// retry schedule: caps double from RetryBase, clamp at 100ms, never go
// non-positive (even at shift overflow), and a full default budget's
// worst-case total sleep stays well under a second.
func TestBackoffScheduleBounded(t *testing.T) {
	c := NewClient(nil, NewRegistry())
	c.RetryBase = time.Millisecond

	var total time.Duration
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		cap := c.backoffCap(attempt)
		want := time.Millisecond << uint(attempt)
		if want > 100*time.Millisecond {
			want = 100 * time.Millisecond
		}
		if cap != want {
			t.Fatalf("backoffCap(%d) = %v, want %v", attempt, cap, want)
		}
		total += cap
	}
	if total >= time.Second {
		t.Fatalf("worst-case total backoff %v for %d attempts, want < 1s", total, c.maxAttempts())
	}

	// Shift overflow on huge attempt numbers must clamp, not wrap.
	for _, attempt := range []int{40, 62, 63} {
		if cap := c.backoffCap(attempt); cap != 100*time.Millisecond {
			t.Fatalf("backoffCap(%d) = %v, want 100ms clamp", attempt, cap)
		}
	}
}

// TestBackoffDrawsJitteredWithinCap asserts every draw is full jitter:
// inside [0, cap], and actually varying rather than a fixed schedule
// (the bug this replaces: every client slept the same deterministic
// steps and retried in lockstep).
func TestBackoffDrawsJitteredWithinCap(t *testing.T) {
	c := NewClient(nil, NewRegistry())
	c.RetryBase = 10 * time.Millisecond

	const attempt = 4 // 10ms << 4 = 160ms, clamped to 100ms
	cap := c.backoffCap(attempt)
	seen := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		d := c.backoff(attempt)
		if d < 0 || d > cap {
			t.Fatalf("draw %v outside [0, %v]", d, cap)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatalf("200 draws produced %d distinct values; schedule is not jittered", len(seen))
	}

	// Two clients in one process must not share a jitter stream.
	c2 := NewClient(nil, NewRegistry())
	c2.RetryBase = c.RetryBase
	same := true
	for i := 0; i < 8; i++ {
		if c.backoff(attempt) != c2.backoff(attempt) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two clients drew identical backoff sequences")
	}
}

// TestExhaustionWrapsErrExhausted kills the only copy of a region and
// asserts the client reports giving up as ErrExhausted — callers can
// tell "the cluster never healed while I retried" from a plain store
// error — while non-retryable errors stay unwrapped.
func TestExhaustionWrapsErrExhausted(t *testing.T) {
	clock := newTestClock()
	c, err := StartLocalCluster(LocalOptions{Servers: 2, Replication: 1, Splits: []string{"m"}})
	if err != nil {
		t.Fatal(err)
	}
	c.Master.opts.Now = clock.now
	t.Cleanup(c.Close)
	beatAll(t, c)
	cl := c.Client()
	cl.RetryBase = time.Microsecond
	cl.MaxAttempts = 3
	if err := cl.CreateTable(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(context.Background(), "t", "a", "c", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// A missing table is a plain error, not an exhausted retry budget.
	if err := cl.Put(context.Background(), "no-such-table", "a", "c", nil); err == nil {
		t.Fatal("Put to missing table succeeded")
	} else if errors.Is(err, ErrExhausted) {
		t.Fatalf("non-retryable error wrapped as ErrExhausted: %v", err)
	}

	m, _ := cl.Meta()
	victim := m.Tables["t"][0].Primary
	c.KillServer(victim)
	// No CheckLiveness: the master never notices, so every retry hits the
	// corpse and the budget runs out.
	_, _, err = cl.Get(context.Background(), "t", "a")
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("Get after exhausting retries = %v, want ErrExhausted", err)
	}
	if err := cl.Put(context.Background(), "t", "a", "c", []byte("w")); !errors.Is(err, ErrExhausted) {
		t.Fatalf("Put after exhausting retries = %v, want ErrExhausted", err)
	}
	if got := cl.Obs().Snapshot().Counters["dstore_client_giveup_total"]; got < 2 {
		t.Fatalf("dstore_client_giveup_total = %d, want >= 2", got)
	}
}
