package dstore

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestMultiGetGroupsAcrossRegions(t *testing.T) {
	c, _ := startCluster(t, 3, []string{"g", "p"})
	cl := c.Client()
	keys := []string{"alpha", "golf", "papa", "zulu"}
	for i, k := range keys {
		if err := cl.Put(context.Background(), "t", k, "c", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	req := []string{"zulu", "nope", "alpha", "papa", "golf", "qqq"}
	rows, found, err := cl.MultiGet(context.Background(), "t", req)
	if err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	if len(rows) != len(req) || len(found) != len(req) {
		t.Fatalf("MultiGet returned %d rows / %d flags for %d keys", len(rows), len(found), len(req))
	}
	wantFound := []bool{true, false, true, true, true, false}
	for i, k := range req {
		if found[i] != wantFound[i] {
			t.Errorf("key %q: found=%v, want %v", k, found[i], wantFound[i])
		}
		if found[i] {
			one, ok, err := cl.Get(context.Background(), "t", k)
			if err != nil || !ok {
				t.Fatalf("Get(%q): ok=%v err=%v", k, ok, err)
			}
			if string(rows[i].Columns["c"]) != string(one.Columns["c"]) {
				t.Errorf("key %q: MultiGet row disagrees with Get", k)
			}
		}
	}
	if cl.Retries() != 0 {
		t.Errorf("healthy-cluster MultiGet retried %d times", cl.Retries())
	}
}

func TestMultiGetSurvivesFailover(t *testing.T) {
	c, clock := startCluster(t, 3, []string{"m"})
	cl := c.Client()
	cl.RetryBase = time.Microsecond

	const n = 30
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
		if err := cl.Put(context.Background(), "t", keys[i], "c", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := cl.Meta()
	victim := m.Tables["t"][0].Primary
	if !c.KillServer(victim) {
		t.Fatalf("KillServer(%s) found nothing to kill", victim)
	}
	clock.advance(3 * time.Second)
	beatAll(t, c)
	if died := c.Master.CheckLiveness(clock.advance(0)); len(died) != 1 || died[0] != victim {
		t.Fatalf("CheckLiveness declared %v dead, want [%s]", died, victim)
	}

	rows, found, err := cl.MultiGet(context.Background(), "t", keys)
	if err != nil {
		t.Fatalf("MultiGet after failover: %v", err)
	}
	for i, k := range keys {
		if !found[i] {
			t.Fatalf("key %q lost in failover", k)
		}
		if want := fmt.Sprintf("v%d", i); string(rows[i].Columns["c"]) != want {
			t.Fatalf("key %q = %q, want %q", k, rows[i].Columns["c"], want)
		}
	}
	if cl.Retries() == 0 {
		t.Error("expected the multi-get to have retried through the failover")
	}
}
