package dstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestFaultInjectionKillPrimaryMidBurst crashes the primary of a region
// in the middle of a concurrent write burst, heals the cluster through
// the master's normal death/failover path, and then holds the system to
// account with its own metrics: every acked write is readable, the
// master counted exactly the one injected death, the failover count
// matches the regions the victim led, and the client visibly retried
// through the outage.
func TestFaultInjectionKillPrimaryMidBurst(t *testing.T) {
	checkGoroutineLeak(t) // before startCluster, so it runs after its Close cleanup
	c, clock := startCluster(t, 3, []string{"m"})
	cl := c.Client()
	cl.RetryBase = time.Microsecond

	m, err := cl.Meta()
	if err != nil {
		t.Fatal(err)
	}
	victim := m.Tables["t"][0].Primary // owns every "k..." burst key
	victimRegions := 0
	for _, g := range m.Tables["t"] {
		if g.Primary == victim {
			victimRegions++
		}
	}

	const (
		writers       = 4
		keysPerWriter = 40
	)
	var (
		ackedMu  sync.Mutex
		acked    = make(map[string]string)
		killOnce sync.Once
		killGate = make(chan struct{})
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPerWriter; i++ {
				key := fmt.Sprintf("k%d-%03d", w, i)
				val := fmt.Sprintf("v%d-%03d", w, i)
				for {
					err := cl.Put(context.Background(), "t", key, "c", []byte(val))
					if err == nil {
						break
					}
					// During the outage window a whole retry budget can
					// drain before the master declares the primary dead;
					// ErrExhausted says "keep budgeting", anything else is
					// a real failure.
					if !errors.Is(err, ErrExhausted) {
						t.Errorf("Put(%q): %v", key, err)
						return
					}
				}
				ackedMu.Lock()
				acked[key] = val
				ackedMu.Unlock()
				if i == 10 {
					killOnce.Do(func() { close(killGate) })
				}
			}
		}(w)
	}

	// Inject the fault mid-burst, then heal: advance the virtual clock
	// past the heartbeat timeout, beat the survivors, and let the master
	// declare the victim dead and promote followers. The clock and the
	// master's liveness path stay on this goroutine only.
	<-killGate
	if !c.KillServer(victim) {
		t.Fatalf("KillServer(%s) found nothing to kill", victim)
	}
	clock.advance(3 * time.Second)
	beatAll(t, c)
	died := c.Master.CheckLiveness(clock.advance(0))
	if len(died) != 1 || died[0] != victim {
		t.Fatalf("CheckLiveness declared %v dead, want [%s]", died, victim)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every acked write must be readable after the failover.
	for key, val := range acked {
		r, ok, err := cl.Get(context.Background(), "t", key)
		if err != nil || !ok {
			t.Fatalf("acked key %q unreadable after failover: ok=%v err=%v", key, ok, err)
		}
		if string(r.Columns["c"]) != val {
			t.Fatalf("acked key %q = %q, want %q", key, r.Columns["c"], val)
		}
	}
	if len(acked) != writers*keysPerWriter {
		t.Fatalf("acked %d keys, want %d", len(acked), writers*keysPerWriter)
	}

	// The observability layer must tie out with the injected fault.
	snap := c.Snapshot()
	if got := snap.Counters["dstore_master_server_deaths_total"]; got != 1 {
		t.Fatalf("dstore_master_server_deaths_total = %d, want 1", got)
	}
	if got := snap.Counters["dstore_master_failovers_total"]; got != int64(victimRegions) {
		t.Fatalf("dstore_master_failovers_total = %d, want %d (regions %s led)", got, victimRegions, victim)
	}
	if snap.Counters["dstore_client_retries_total"] == 0 {
		t.Fatal("dstore_client_retries_total = 0; the burst never observed the outage")
	}
	var sawDead, sawFailover bool
	for _, e := range snap.Events {
		switch {
		case e.Type == "server_dead" && e.Fields["server"] == victim:
			sawDead = true
		case e.Type == "failover" && e.Fields["from"] == victim:
			sawFailover = true
		}
	}
	if !sawDead || !sawFailover {
		t.Fatalf("event log missing the fault: server_dead=%v failover=%v (events %v)", sawDead, sawFailover, snap.Events)
	}
}
