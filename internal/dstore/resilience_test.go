package dstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pstorm/internal/hstore"
)

// TestBreakerStateMachine drives the breaker through its whole cycle
// with a manual clock: failures to threshold open it, the cooldown
// admits one half-open probe, and the probe's outcome decides.
func TestBreakerStateMachine(t *testing.T) {
	clock := newTestClock()
	c := NewClient(nil, nil)
	c.BreakerThreshold = 3
	c.BreakerCooldown = 100 * time.Millisecond
	c.Now = clock.now
	b := c.breakerFor("rs-x")

	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("breaker rejected call %d while closed", i)
		}
		b.record(true)
	}
	if b.allow() {
		t.Fatal("breaker still admitting after threshold failures")
	}
	if got := c.BreakerState("rs-x"); got != breakerOpen {
		t.Fatalf("state = %d, want open(%d)", got, breakerOpen)
	}

	// Cooldown elapses: exactly one probe is admitted.
	clock.advance(101 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// Probe fails: back to open, cooldown restarts.
	b.record(true)
	if b.allow() {
		t.Fatal("breaker admitted right after failed probe")
	}
	clock.advance(101 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open again")
	}
	// Probe succeeds: closed, calls flow again.
	b.record(false)
	if got := c.BreakerState("rs-x"); got != breakerClosed {
		t.Fatalf("state after successful probe = %d, want closed(%d)", got, breakerClosed)
	}
	if !b.allow() {
		t.Fatal("closed breaker rejected a call")
	}
}

// TestBreakerIgnoresApplicationErrors: a NotServing answer proves the
// server is alive and must close (not trip) the breaker.
func TestBreakerIgnoresApplicationErrors(t *testing.T) {
	if breakerFailure(&hstore.NotServingError{Table: "t", Row: "r"}) {
		t.Error("NotServing classified as a transport failure")
	}
	if breakerFailure(errReplication) {
		t.Error("replication failure classified as a transport failure")
	}
	if !breakerFailure(fmt.Errorf("rs-1: %w", errStopped)) {
		t.Error("stopped server not classified as a transport failure")
	}
	if !breakerFailure(fmt.Errorf("x: %w", ErrInjected)) {
		t.Error("injected fault not classified as a transport failure")
	}
}

// TestClientBreakerTripsOnDeadServer: hammering a dead primary opens
// its breaker; after failover the new primary's breaker is untouched
// and reads succeed.
func TestClientBreakerTripsOnDeadServer(t *testing.T) {
	c, clock := startCluster(t, 3, nil)
	cl := c.Client()
	cl.MaxAttempts = 4
	cl.RetryBase = time.Nanosecond
	cl.BreakerThreshold = 2
	cl.Now = clock.now // cooldown never elapses: the clock only moves when we say so

	if err := cl.Put(context.Background(), "t", "k", "c", []byte("v")); err != nil {
		t.Fatal(err)
	}
	m, _ := cl.Meta()
	g, err := cl.routeIn(m, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	dead := g.Primary
	if !c.KillServer(dead) {
		t.Fatal("KillServer failed")
	}
	if _, _, err := cl.Get(context.Background(), "t", "k"); !errors.Is(err, ErrExhausted) {
		t.Fatalf("Get against dead primary: err=%v, want ErrExhausted", err)
	}
	if got := cl.BreakerState(dead); got != breakerOpen {
		t.Fatalf("breaker for dead server = %d, want open(%d)", got, breakerOpen)
	}

	// Failover, then reads flow to the promoted follower.
	clock.advance(3 * time.Second)
	beatAll(t, c)
	c.Master.CheckLiveness(clock.now())
	row, ok, err := cl.Get(context.Background(), "t", "k")
	if err != nil || !ok || string(row.Columns["c"]) != "v" {
		t.Fatalf("Get after failover: row=%v ok=%v err=%v", row, ok, err)
	}
}

// TestCtxCancelStopsRetriesWithoutExhausted: cancellation surfaces the
// context's own error — never ErrExhausted — and consumes no attempts.
func TestCtxCancelStopsRetriesWithoutExhausted(t *testing.T) {
	c, _ := startCluster(t, 3, nil)
	cl := c.Client()
	if err := cl.Put(context.Background(), "t", "k", "c", []byte("v")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	retriesBefore := cl.Retries()
	if _, _, err := cl.Get(ctx, "t", "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("GetCtx on canceled ctx: err=%v, want context.Canceled", err)
	} else if errors.Is(err, ErrExhausted) {
		t.Fatalf("cancellation misreported as exhaustion: %v", err)
	}
	if cl.Retries() != retriesBefore {
		t.Error("canceled call consumed retry attempts")
	}
	if err := cl.Put(ctx, "t", "k", "c", []byte("w")); !errors.Is(err, context.Canceled) {
		t.Fatalf("PutCtx: err=%v, want context.Canceled", err)
	}
	if _, _, err := cl.MultiGet(ctx, "t", []string{"k"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MultiGetCtx: err=%v, want context.Canceled", err)
	}
	if err := cl.BatchPut(ctx, "t", []hstore.Row{{Key: "k"}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchPutCtx: err=%v, want context.Canceled", err)
	}
}

// TestCtxCancelMidBackoff: a cancellation arriving while the client
// sleeps between retries interrupts the sleep promptly.
func TestCtxCancelMidBackoff(t *testing.T) {
	c, _ := startCluster(t, 2, nil)
	cl := c.Client()
	cl.RetryBase = time.Hour // without interruption the test would hang
	cl.BreakerThreshold = -1
	if err := cl.Put(context.Background(), "t", "k", "c", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, rs := range c.Servers {
		rs.Stop()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := cl.Get(ctx, "t", "k")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it reach the backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

// TestOpBudgetExhausts: a wall-clock budget cuts the retry loop short
// with ErrExhausted even when attempts remain.
func TestOpBudgetExhausts(t *testing.T) {
	c, clock := startCluster(t, 2, nil)
	cl := c.Client()
	cl.RetryBase = time.Nanosecond
	cl.BreakerThreshold = -1
	cl.OpBudget = 50 * time.Millisecond
	cl.Now = func() time.Time { return clock.advance(30 * time.Millisecond) }
	if err := cl.Put(context.Background(), "t", "k", "c", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, rs := range c.Servers {
		rs.Stop()
	}
	_, _, err := cl.Get(context.Background(), "t", "k")
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err=%v, want ErrExhausted", err)
	}
	// The budget (2 clock ticks) must have fired well before the 12
	// default attempts.
	if got := cl.Retries(); got >= 12 {
		t.Fatalf("budget did not cut retries short: %d retries", got)
	}
}

// slowConn delays reads on one wrapped connection — the straggling
// primary a hedged read exists to cover.
type slowConn struct {
	ServerConn
	delay time.Duration
}

func (s *slowConn) Get(ctx context.Context, table, row string) (hstore.Row, bool, error) {
	time.Sleep(s.delay)
	return s.ServerConn.Get(ctx, table, row)
}

// TestHedgedReadCoversSlowPrimary: with the primary answering slowly,
// an armed hedge fires a follower read and the operation completes at
// follower latency with the correct value.
func TestHedgedReadCoversSlowPrimary(t *testing.T) {
	c, _ := startCluster(t, 2, nil)
	cl := c.Client()
	if err := cl.Put(context.Background(), "t", "k", "c", []byte("v")); err != nil {
		t.Fatal(err)
	}
	m, _ := cl.Meta()
	g, err := cl.routeIn(m, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Followers) == 0 {
		t.Fatal("region has no follower to hedge against")
	}
	slow := g.Primary
	c.Reg.WrapConn = func(id string, conn ServerConn) ServerConn {
		if id == slow {
			return &slowConn{ServerConn: conn, delay: 300 * time.Millisecond}
		}
		return conn
	}
	cl.HedgeDelay = 5 * time.Millisecond

	row, ok, err := cl.Get(context.Background(), "t", "k")
	if err != nil || !ok || string(row.Columns["c"]) != "v" {
		t.Fatalf("hedged Get: row=%v ok=%v err=%v", row, ok, err)
	}
	if n := cl.Obs().Snapshot().Counters["hedged_reads_total"]; n == 0 {
		t.Error("hedged read not counted")
	}
}

// TestQuarantineRebuildHealsCorruptPrimary is the full self-healing
// loop: a bit flip on the primary's sstable latches quarantine, the
// master's health poll promotes the healthy follower and drops the
// corrupt copy, re-replication restores the copy count, and every row
// reads back correct — the corruption never reaches a client.
func TestQuarantineRebuildHealsCorruptPrimary(t *testing.T) {
	c, clock := startCluster(t, 3, nil)
	cl := c.Client()
	for i := 0; i < 10; i++ {
		if err := cl.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), "c", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush("t"); err != nil {
		t.Fatal(err)
	}
	m, _ := cl.Meta()
	g, err := cl.routeIn(m, "t", "k00")
	if err != nil {
		t.Fatal(err)
	}
	corrupt, follower := g.Primary, g.Followers[0]
	hs := c.Server(corrupt).HStore()
	if !hs.CorruptRegionData("t", g.ID, 1000) {
		t.Fatal("CorruptRegionData found nothing to damage")
	}
	// A read trips the checksum, latches quarantine, and surfaces as
	// NotServing (retryable) — never as wrong bytes.
	if _, _, err := hs.Get("t", "k00"); !hstore.IsCorruption(err) {
		t.Fatalf("direct read of corrupt region: err=%v, want CorruptionError", err)
	}
	if len(hs.Quarantined()) != 1 {
		t.Fatalf("Quarantined() = %v, want one region", hs.Quarantined())
	}

	if rebuilt := c.Master.CheckHealth(); rebuilt != 1 {
		t.Fatalf("CheckHealth rebuilt %d copies, want 1", rebuilt)
	}
	g2, err := cl.routeIn(c.Master.Meta(), "t", "k00")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Primary != follower {
		t.Fatalf("promoted primary = %s, want healthy follower %s", g2.Primary, follower)
	}
	for _, f := range g2.Followers {
		if f == corrupt {
			t.Fatalf("corrupt server still listed as follower: %v", g2.Followers)
		}
	}
	if len(c.Server(corrupt).HStore().Quarantined()) != 0 {
		t.Error("corrupt copy not dropped from its server")
	}
	if n := c.Master.Obs().Snapshot().Counters["quarantine_rebuilds_total"]; n != 1 {
		t.Fatalf("quarantine_rebuilds_total = %d, want 1", n)
	}

	// Every row still reads back correct through the client.
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%02d", i)
		row, ok, err := cl.Get(context.Background(), "t", k)
		if err != nil || !ok || string(row.Columns["c"]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after rebuild: row=%v ok=%v err=%v", k, row, ok, err)
		}
	}

	// The liveness pass re-replicates the region onto a fresh follower.
	beatAll(t, c)
	c.Master.CheckLiveness(clock.now())
	g3, err := cl.routeIn(c.Master.Meta(), "t", "k00")
	if err != nil {
		t.Fatal(err)
	}
	if len(g3.Followers) != 1 {
		t.Fatalf("replication not restored: followers=%v", g3.Followers)
	}
}

// TestQuarantineRebuildPrunesCorruptFollower: damage on a follower
// copy is evicted without touching the primary.
func TestQuarantineRebuildPrunesCorruptFollower(t *testing.T) {
	c, clock := startCluster(t, 3, nil)
	cl := c.Client()
	for i := 0; i < 10; i++ {
		if err := cl.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), "c", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush("t"); err != nil {
		t.Fatal(err)
	}
	g, err := cl.routeIn(c.Master.Meta(), "t", "k00")
	if err != nil {
		t.Fatal(err)
	}
	primary, bad := g.Primary, g.Followers[0]
	hs := c.Server(bad).HStore()
	if !hs.CorruptRegionData("t", g.ID, 4) {
		t.Fatal("CorruptRegionData found nothing to damage")
	}
	// Latch via a fence-bypassing read (the copy is fenced as a
	// follower, so a plain Get would refuse before reading data).
	if _, _, err := hs.GetAny("t", "k00"); !hstore.IsCorruption(err) {
		t.Fatalf("GetAny on corrupt follower: err=%v, want CorruptionError", err)
	}
	if rebuilt := c.Master.CheckHealth(); rebuilt != 1 {
		t.Fatalf("CheckHealth rebuilt %d, want 1", rebuilt)
	}
	g2, err := cl.routeIn(c.Master.Meta(), "t", "k00")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Primary != primary {
		t.Fatalf("primary changed from %s to %s on follower eviction", primary, g2.Primary)
	}
	for _, f := range g2.Followers {
		if f == bad {
			t.Fatal("corrupt follower still in the follower set")
		}
	}
	// Re-replication restores the copy count.
	beatAll(t, c)
	c.Master.CheckLiveness(clock.now())
	g3, _ := cl.routeIn(c.Master.Meta(), "t", "k00")
	if len(g3.Followers) != 1 {
		t.Fatalf("replication not restored: followers=%v", g3.Followers)
	}
}
