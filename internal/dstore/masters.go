package dstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// multiMaster is a MasterConn over a list of master candidates. It
// remembers which entry last answered as leader and sends there first;
// on a NotLeader redirect it jumps to the hinted entry, and on a
// transport-level failure it rotates to the next candidate — so
// callers (clients, gateways, region-server heartbeats) never see a
// master takeover, only at worst a brief errNoLeader while the new
// leader settles, which the routing client forgives from its attempt
// budget.
type multiMaster struct {
	entries []masterEntry

	mu   sync.Mutex
	pref int // index of the entry that last behaved like a leader
}

type masterEntry struct {
	id   string
	addr string
	conn MasterConn
}

// ConnectMasters returns a MasterConn that fails over across the given
// in-process masters. With a single master it is equivalent to
// ConnectMaster.
func ConnectMasters(ms ...*Master) MasterConn {
	if len(ms) == 1 {
		return ConnectMaster(ms[0])
	}
	entries := make([]masterEntry, 0, len(ms))
	for _, m := range ms {
		entries = append(entries, masterEntry{id: m.MasterID(), conn: ConnectMaster(m)})
	}
	return &multiMaster{entries: entries}
}

// DialMasters returns a MasterConn that fails over across a
// comma-separated list of master base URLs — the form every `-master`
// flag accepts. A single address degenerates to DialMaster.
func DialMasters(addrs string, timeout time.Duration) MasterConn {
	var entries []masterEntry
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		entries = append(entries, masterEntry{addr: a, conn: DialMaster(a, timeout)})
	}
	if len(entries) == 1 {
		return entries[0].conn
	}
	return &multiMaster{entries: entries}
}

func (mm *multiMaster) prefIndex() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if mm.pref < 0 || mm.pref >= len(mm.entries) {
		mm.pref = 0
	}
	return mm.pref
}

func (mm *multiMaster) setPref(i int) {
	mm.mu.Lock()
	mm.pref = i
	mm.mu.Unlock()
}

// findHint maps a NotLeader hint to an entry index, or -1. Addr hints
// contain "://"; anything else is a master ID.
func (mm *multiMaster) findHint(nl *NotLeaderError) int {
	for i, e := range mm.entries {
		if nl.LeaderAddr != "" && e.addr != "" && strings.TrimRight(e.addr, "/") == strings.TrimRight(nl.LeaderAddr, "/") {
			return i
		}
		if nl.LeaderID != "" && e.id == nl.LeaderID {
			return i
		}
	}
	return -1
}

// call runs f against candidates until one succeeds, following leader
// hints and rotating past dead or standby entries. The hop budget is
// 2n+1: enough to visit every entry once, chase one round of stale
// hints, and land on a freshly promoted leader — without looping
// forever when an election is still in flight (that surfaces as
// errNoLeader, which the client retries on wall-clock budget).
func (mm *multiMaster) call(f func(MasterConn) error) error {
	n := len(mm.entries)
	if n == 0 {
		return fmt.Errorf("%w: empty master list", errNoLeader)
	}
	i := mm.prefIndex()
	var lastErr error
	for hop := 0; hop < 2*n+1; hop++ {
		err := f(mm.entries[i].conn)
		if err == nil {
			mm.setPref(i)
			return nil
		}
		lastErr = err
		var nl *NotLeaderError
		if errors.As(err, &nl) {
			if j := mm.findHint(nl); j >= 0 && j != i {
				i = j
				continue
			}
			i = (i + 1) % n
			continue
		}
		if retryable(err) {
			// Dead / unreachable / stopped entry: try the next one.
			i = (i + 1) % n
			continue
		}
		// A real answer from a live leader (bad table name, etc.):
		// surface it, don't mask it behind failover.
		return err
	}
	return fmt.Errorf("%w: %v", errNoLeader, lastErr)
}

func (mm *multiMaster) Join(p Peer) error {
	return mm.call(func(c MasterConn) error { return c.Join(p) })
}

func (mm *multiMaster) Heartbeat(id string) error {
	return mm.call(func(c MasterConn) error { return c.Heartbeat(id) })
}

func (mm *multiMaster) Meta() (Meta, error) {
	var out Meta
	err := mm.call(func(c MasterConn) error {
		var e error
		out, e = c.Meta()
		return e
	})
	return out, err
}

func (mm *multiMaster) CreateTable(table string) error {
	return mm.call(func(c MasterConn) error { return c.CreateTable(table) })
}
