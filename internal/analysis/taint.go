package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the dataflow-lattice side of the tenant-taint analysis:
// a forward taint propagation over the statement CFG, with per-function
// summaries composed bottom-up over the call graph. The lattice value
// per variable is a bitmask: bit 63 marks request-derived data (the
// actual taint), bits 0..62 mark "derives from parameter i" and exist
// only so summaries can be computed — a function's summary says which
// of its parameters flow into its return values and which reach a raw
// KV sink inside it, letting call sites transport taint through
// helpers without reanalyzing them.

const taintSrcBit uint64 = 1 << 63

// taintSummary is the per-function interprocedural summary.
type taintSummary struct {
	// ret: parameters whose taint flows into a return value.
	ret uint64
	// sink: parameters that reach a raw KV operation's string argument
	// (directly or through further calls).
	sink uint64
}

// taintState maps in-scope variables to their taint masks.
type taintState map[*types.Var]uint64

func (s taintState) clone() taintState {
	out := make(taintState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

var taintFlow = FlowFuncs[taintState]{
	Join: func(a, b taintState) taintState {
		out := a.clone()
		for k, v := range b {
			out[k] |= v
		}
		return out
	},
	Equal: func(a, b taintState) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	},
	Clone: func(s taintState) taintState { return s.clone() },
}

// requestTyped reports whether a type carries request input by
// construction: the request itself, its parsed query/form values, or
// its header map.
func requestTyped(t types.Type) bool {
	switch t.String() {
	case "*net/http.Request", "net/http.Request", "net/url.Values", "net/http.Header":
		return true
	}
	return false
}

// kvVerbs are the raw KV surface: the method names of core.KV and the
// dstore/hstore client equivalents. Their string arguments are
// table/row/column coordinates — the positions tenant isolation guards.
var kvVerbs = map[string]bool{
	"CreateTable": true, "Put": true, "PutRow": true,
	"Get": true, "Scan": true, "DeleteRow": true, "MultiGet": true,
}

// kvSink reports whether call is a raw KV operation: a KV-verb method
// on a module-declared interface, or on a dstore/hstore client type.
// Calls through core.Store are deliberately NOT sinks — Store methods
// prefix every key with the validated tenant namespace, which is
// exactly the sanctioned path.
func kvSink(pkg *Package, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || !kvVerbs[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if types.IsInterface(recv) {
		// Interface KV surface (core.KV and friends): the interface must
		// be module-declared — either in a pstorm package or in the
		// package under analysis itself (fixtures declare their own).
		if strings.Contains(fn.Pkg().Path(), "pstorm") || fn.Pkg() == pkg.Types {
			return "KV." + fn.Name(), true
		}
		return "", false
	}
	if named := recvTypeName(sig); named != nil {
		p := named.Pkg().Path()
		if (strings.HasSuffix(p, "/dstore") || strings.HasSuffix(p, "/hstore")) &&
			strings.HasSuffix(strings.ToLower(named.Name()), "client") {
			return named.Name() + "." + fn.Name(), true
		}
	}
	return "", false
}

func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// sanitizerClears returns the argument expressions a call sanitizes:
// core.ValidateTenant(x) and core.NewTenantStore(kv, x) both vouch for
// x, clearing its taint on every path after the call (the error path
// returns immediately in all sanctioned shapes).
func sanitizerClears(pkg *Package, call *ast.CallExpr) ([]ast.Expr, bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/core") {
		return nil, false
	}
	switch fn.Name() {
	case "ValidateTenant":
		if len(call.Args) >= 1 {
			return call.Args[:1], true
		}
	case "NewTenantStore":
		if len(call.Args) >= 2 {
			return call.Args[1:2], true
		}
	}
	return nil, false
}

// taintEngine propagates taint through one function body.
type taintEngine struct {
	pkg *Package
	// isLocal reports whether a callee is a module function with a
	// summary (i.e. a call-graph node).
	isLocal func(*types.Func) bool
	// exempt reports whether a callee lives below the tenant boundary;
	// calls into exempt code return untainted and are never sinks.
	exempt func(*types.Func) bool
	// sum returns the callee's summary (zero value outside the module).
	sum func(*types.Func) taintSummary
	// onSink fires for every string argument of a KV sink (or of a call
	// whose summary says the argument reaches a sink), with the
	// argument's taint mask.
	onSink func(pos token.Pos, desc string, mask uint64)
	// onReturn fires for each return statement with the union mask of
	// its results.
	onReturn func(mask uint64)
}

// exprMask computes the taint mask of an expression under state s.
func (te *taintEngine) exprMask(e ast.Expr, s taintState) uint64 {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := te.pkg.Info.Uses[x]
		if obj == nil {
			obj = te.pkg.Info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return 0
		}
		m := s[v]
		if requestTyped(v.Type()) {
			m |= taintSrcBit
		}
		return m
	case *ast.SelectorExpr:
		m := te.exprMask(x.X, s)
		if tv, ok := te.pkg.Info.Types[x]; ok && requestTyped(tv.Type) {
			m |= taintSrcBit
		}
		return m
	case *ast.CallExpr:
		return te.callMask(x, s)
	case *ast.BinaryExpr:
		return te.exprMask(x.X, s) | te.exprMask(x.Y, s)
	case *ast.IndexExpr:
		return te.exprMask(x.X, s) | te.exprMask(x.Index, s)
	case *ast.SliceExpr:
		return te.exprMask(x.X, s)
	case *ast.StarExpr:
		return te.exprMask(x.X, s)
	case *ast.UnaryExpr:
		return te.exprMask(x.X, s)
	case *ast.TypeAssertExpr:
		return te.exprMask(x.X, s)
	case *ast.KeyValueExpr:
		return te.exprMask(x.Value, s)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range x.Elts {
			m |= te.exprMask(el, s)
		}
		return m
	}
	return 0
}

// callMask computes the taint of a call's result: sanitizers return
// clean, module callees transport exactly the parameters their summary
// says flow to returns, everything else conservatively derives its
// result from all inputs.
func (te *taintEngine) callMask(call *ast.CallExpr, s taintState) uint64 {
	if _, ok := sanitizerClears(te.pkg, call); ok {
		return 0
	}
	fn := calleeFunc(te.pkg, call)
	var recvm uint64
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvm = te.exprMask(sel.X, s)
	}
	if fn != nil && te.isLocal(fn) {
		if te.exempt(fn) {
			return 0
		}
		sum := te.sum(fn)
		var m uint64
		for i, a := range call.Args {
			if i < 63 && sum.ret&(1<<uint(i)) != 0 {
				m |= te.exprMask(a, s)
			}
		}
		return m | recvm
	}
	// Unknown or stdlib callee: result derives from every input
	// (Sprintf, strings.Join, Atoi, ...).
	m := recvm
	for _, a := range call.Args {
		m |= te.exprMask(a, s)
	}
	if tv, ok := te.pkg.Info.Types[call]; ok && requestTyped(tv.Type) {
		m |= taintSrcBit
	}
	return m
}

// applyCall handles a call's side effects on the state, and its sink
// obligations: sanitizer clears, &x argument write-back (a tainted
// decoder filling a struct), raw KV sinks, and summary-declared sinks
// in module callees.
func (te *taintEngine) applyCall(call *ast.CallExpr, s taintState) {
	if cleared, ok := sanitizerClears(te.pkg, call); ok {
		for _, e := range cleared {
			if v := te.lhsVar(e); v != nil {
				s[v] = 0
			}
		}
		return
	}

	var inMask uint64
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		inMask = te.exprMask(sel.X, s)
	}
	for _, a := range call.Args {
		inMask |= te.exprMask(a, s)
	}
	// json.NewDecoder(r.Body).Decode(&req): the pointee of an address
	// argument absorbs the call's input taint.
	if inMask != 0 {
		for _, a := range call.Args {
			if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if v := te.lhsVar(u.X); v != nil {
					s[v] |= inMask
				}
			}
		}
	}

	fn := calleeFunc(te.pkg, call)
	if fn != nil && te.exempt(fn) {
		return
	}
	if desc, ok := kvSink(te.pkg, call); ok && te.onSink != nil {
		for _, a := range call.Args {
			if !isStringExpr(te.pkg, a) {
				continue
			}
			if m := te.exprMask(a, s); m != 0 {
				te.onSink(a.Pos(), desc, m)
			}
		}
		return
	}
	if fn != nil && te.isLocal(fn) && te.onSink != nil {
		sum := te.sum(fn)
		if sum.sink == 0 {
			return
		}
		for i, a := range call.Args {
			if i < 63 && sum.sink&(1<<uint(i)) != 0 {
				if m := te.exprMask(a, s); m != 0 {
					te.onSink(a.Pos(), funcDisplay(fn), m)
				}
			}
		}
	}
}

func isStringExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// lhsVar resolves an expression to the variable it names: an ident, or
// the root ident of a selector/index chain (writes through a path taint
// the container, weakly).
func (te *taintEngine) lhsVar(e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := te.pkg.Info.Uses[x]
			if obj == nil {
				obj = te.pkg.Info.Defs[x]
			}
			v, _ := obj.(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// transfer interprets one shallow CFG node: call side effects and
// sinks first (in the pre-assignment state), then assignments.
func (te *taintEngine) transfer(n ast.Node, s taintState) taintState {
	out := s.clone()
	skipLits(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			te.applyCall(call, out)
		}
		return true
	})
	switch st := n.(type) {
	case *ast.AssignStmt:
		te.assign(st.Lhs, st.Rhs, st.Tok, out)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					te.assign(lhs, vs.Values, token.DEFINE, out)
				}
			}
		}
	case *ast.ReturnStmt:
		if te.onReturn != nil {
			var m uint64
			for _, r := range st.Results {
				m |= te.exprMask(r, out)
			}
			te.onReturn(m)
		}
	}
	return out
}

func (te *taintEngine) assign(lhs, rhs []ast.Expr, tok token.Token, s taintState) {
	masks := make([]uint64, len(lhs))
	if len(rhs) == 1 && len(lhs) > 1 {
		m := te.exprMask(rhs[0], s)
		for i := range masks {
			masks[i] = m
		}
	} else {
		for i := range lhs {
			if i < len(rhs) {
				masks[i] = te.exprMask(rhs[i], s)
			}
		}
	}
	for i, l := range lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		v := te.lhsVar(l)
		if v == nil {
			continue
		}
		if _, isIdent := ast.Unparen(l).(*ast.Ident); isIdent && (tok == token.ASSIGN || tok == token.DEFINE) {
			s[v] = masks[i]
		} else {
			// += style, or a write through a field/index path: weak update.
			s[v] |= masks[i]
		}
	}
}

// runTaint solves one function body and streams sinks/returns to the
// engine's callbacks. seed is the entry state (parameter bits for
// summary computation, empty for the reporting pass). Callbacks are
// muted during the fixpoint — a worklist revisits nodes with interim
// states — and fire exactly once per node in a deterministic replay
// over the solved states.
func (te *taintEngine) runTaint(body *ast.BlockStmt, seed taintState) {
	cfg := BuildCFG(body)
	onSink, onReturn := te.onSink, te.onReturn
	te.onSink, te.onReturn = nil, nil
	flow := taintFlow
	flow.Transfer = te.transfer
	in := Forward(cfg, seed, flow)
	te.onSink, te.onReturn = onSink, onReturn
	for _, blk := range cfg.Blocks {
		s, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		s = s.clone()
		for _, n := range blk.Nodes {
			s = te.transfer(n, s)
		}
	}
}
