// Package ctxrootfix exercises the internal-package arm of ctxcheck:
// under internal/ a bare Background()/TODO() is flagged even in code
// no handler reaches — internal code is never the top of a call
// stack, so the only sanctioned detachments carry an allow directive.
package ctxrootfix

import "context"

// offline is NOT handler-reachable, but lives under internal/ — the
// strengthened rule flags it anyway.
func offline() {
	ctx := context.Background() // want `context\.Background\(\) in .*offline.* internal code is never a context root`
	_ = ctx
}

func todoOffline() {
	ctx := context.TODO() // want `context\.TODO\(\) in .*todoOffline`
	_ = ctx
}

// adminCtx is the sanctioned shape: a process-owned maintenance root
// with a reason on the line.
func adminCtx() context.Context {
	return context.Background() //pstorm:allow ctxcheck process-owned maintenance path with no inbound request context
}

// threaded code is clean.
func fetch(ctx context.Context) error {
	_, cancel := context.WithTimeout(ctx, 0)
	defer cancel()
	return ctx.Err()
}
