// Package unusedallowfix exercises the unusedallow pseudo-checker: a
// //pstorm:allow directive that suppresses nothing is itself reported,
// but only when the checker it names actually ran.
package unusedallowfix

import "time"

// stamped carries a directive that earns its keep.
func stamped() time.Time {
	//pstorm:allow clockcheck load-driver timestamps are wall-clock by design
	return time.Now()
}

// quiet carries a directive whose finding is long gone.
func quiet() int {
	//pstorm:allow clockcheck guarded a time.Now call that was refactored away
	return 42
}
