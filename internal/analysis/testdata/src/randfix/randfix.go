// Package randfix exercises randcheck: package-level math/rand calls
// share the global source and are findings; seeded *rand.Rand
// construction and methods are not.
package randfix

import "math/rand"

func globalDraw() int {
	return rand.Intn(10) // want `global math/rand call rand\.Intn`
}

func globalSeed() {
	rand.Seed(42) // want `global math/rand call rand\.Seed`
}

var unlucky = rand.Float64() // want `global math/rand call rand\.Float64`

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // allowed: constructors
	z := rand.NewZipf(r, 1.1, 1, 100)   // allowed: constructor
	_ = z.Uint64()                      // allowed: method on seeded generator
	return r.Intn(10)                   // allowed: method on seeded generator
}
