// Package leakfix exercises leakcheck: goroutines in server packages
// must be tied to a WaitGroup, a stop channel, or a context — or be
// bounded one-shots. The package name contains "leakfix" to land in
// the checker's long-lived-package scope.
package leakfix

import (
	"context"
	"sync"
	"time"
)

type server struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

// startUntied spins forever with nothing watching it.
func (s *server) startUntied() {
	go func() { // want `goroutine is not tied to a WaitGroup, stop channel, or context`
		for {
			time.Sleep(time.Second)
		}
	}()
}

// startLoop selects on the stop channel: tied.
func (s *server) startLoop() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case <-time.After(time.Second):
			}
		}
	}()
}

// startWG signals a WaitGroup: tied.
func (s *server) startWG() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// startCtx watches a context: tied.
func (s *server) startCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Start spawns a named loop whose own body observes the stop channel —
// the tie is found through the callee's bottom-up summary.
func (s *server) Start() {
	go s.loop()
}

func (s *server) loop() {
	for {
		select {
		case <-s.stop:
			return
		}
	}
}

// startElectionLoop mirrors the HA master's control loop: a ticker
// driving election/lease upkeep, reaped by Close via the stop channel.
func (s *server) startElectionLoop() {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				work()
			}
		}
	}()
}

// startJournalTailer mirrors a standby tailing the leader's META
// journal: the named callee's own loop observes the stop channel, so
// the tie is found through the bottom-up summary.
func (s *server) startJournalTailer() {
	s.wg.Add(1)
	go s.tailJournal()
}

func (s *server) tailJournal() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-time.After(time.Second):
			work() // pull the next journal frames
		}
	}
}

// startUntiedTailer is the regression shape: a journal tailer that
// spins with nothing watching it survives Close.
func (s *server) startUntiedTailer() {
	go func() { // want `goroutine is not tied to a WaitGroup, stop channel, or context`
		for {
			time.Sleep(time.Second)
			work()
		}
	}()
}

// hedged is the bounded one-shot idiom: no loops, and the only send
// targets a buffered channel, so the goroutine cannot outlive its one
// operation by more than the operation itself.
func (s *server) hedged() int {
	ch := make(chan int, 1)
	go func() {
		ch <- work()
	}()
	return <-ch
}

// startUnbuffered sends on an unbuffered channel with no lifecycle: if
// the receiver gives up, the goroutine blocks forever.
func (s *server) startUnbuffered() chan int {
	ch := make(chan int)
	go func() { // want `goroutine is not tied to a WaitGroup, stop channel, or context`
		ch <- work()
	}()
	return ch
}

func work() int { return 42 }
