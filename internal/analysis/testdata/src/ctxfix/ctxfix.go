// Package ctxfix exercises ctxcheck: functions reachable from HTTP
// handlers must not mint root contexts, and WithoutCancel always needs
// a reason. Code off the request path may use Background freely.
package ctxfix

import (
	"context"
	"net/http"
)

// handle is a handler root; everything it calls is request-path code.
func handle(w http.ResponseWriter, r *http.Request) {
	fetch(r.Context(), "key")
}

func fetch(ctx context.Context, key string) {
	_ = ctx
	refresh()
}

// refresh is two hops from the handler — still on the request path.
func refresh() {
	ctx := context.Background() // want `context\.Background\(\) in .*refresh.* reachable from an HTTP handler`
	_ = ctx
}

// todoOnPath: TODO is the same hazard as Background.
func todoOnPath(w http.ResponseWriter, r *http.Request) {
	ctx := context.TODO() // want `context\.TODO\(\) in .*todoOnPath`
	_ = ctx
}

// detach: WithoutCancel is flagged everywhere, reachable or not.
func detach(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx) // want `context\.WithoutCancel detaches the request lifetime`
}

// register wires a handler closure — the gateway's instrument pattern.
// Functions the closure calls are handler-reachable through it.
func register(mux *http.ServeMux) {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		lookup()
	})
}

func lookup() {
	ctx := context.Background() // want `context\.Background\(\) in .*lookup`
	_ = ctx
}

// offline is not reachable from any handler: a root context is fine.
func offline() {
	ctx := context.Background()
	_ = ctx
}

// electionLoop is process-lifecycle code, never on a request path: a
// master's control loop legitimately roots its own context.
func electionLoop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			ctx := context.Background()
			_ = ctx
		}
	}
}

// tailHandler serves META journal tails over HTTP; code on that path
// must thread the follower's request context, not mint a root one.
func tailHandler(w http.ResponseWriter, r *http.Request) {
	tailOnce()
}

func tailOnce() {
	ctx := context.Background() // want `context\.Background\(\) in .*tailOnce.* reachable from an HTTP handler`
	_ = ctx
}
