// Package badallowfix exercises directive validation: an unknown
// checker name and a missing reason are findings in their own right,
// and a malformed directive suppresses nothing.
package badallowfix

import "time"

func unknownChecker() time.Time {
	//pstorm:allow nosuchchecker this checker does not exist
	return time.Now()
}

func missingReason() time.Time {
	//pstorm:allow clockcheck
	return time.Now()
}
