// Package clockfix exercises clockcheck: bare time.Now()/time.Since()
// calls are findings; taking time.Now as a value (the injectable-clock
// default idiom) is not.
package clockfix

import "time"

// Taking the function value is the injection idiom — allowed.
var defaultNow = time.Now

type options struct {
	Now func() time.Time
}

var opts = options{Now: time.Now} // allowed: value, not a call

func stamp() time.Time {
	return time.Now() // want `bare time\.Now\(\)`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `bare time\.Since\(\)`
}

func injected(o options) time.Time {
	now := defaultNow
	if o.Now != nil {
		now = o.Now
	}
	return now() // allowed: call through an injected clock variable
}
