// Package lockorderfix exercises lockorder: a cycle in the global
// lock-class acquisition-order graph is a potential deadlock, found
// across function boundaries. TryLock acquisitions, go-spawned
// goroutines, and same-class nesting must NOT create cycle edges.
package lockorderfix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// takeAB establishes A→B: B acquired while A is held.
func takeAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock order cycle: acquires \(lockorderfix\.B\)\.mu while holding \(lockorderfix\.A\)\.mu`
	b.mu.Unlock()
}

// takeBA establishes the reverse order through a helper: A is acquired
// two calls deep while B is held. Both directions existing is the bug.
func takeBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA(a) // want `call to .*lockA acquires \(lockorderfix\.A\)\.mu while holding \(lockorderfix\.B\)\.mu`
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

// ---- negative cases: each of these orders is one-directional. ----

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// cThenD establishes C→D.
func cThenD(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

// dTryC holds D and conditionally grabs C — non-blocking, so no D→C
// edge and no cycle with cThenD.
func dTryC(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c.mu.TryLock() {
		c.mu.Unlock()
	}
}

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

// eSpawnsF holds E while spawning a goroutine that takes F: the fresh
// goroutine holds nothing, so no E→F edge exists.
func eSpawnsF(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		f.mu.Lock()
		f.mu.Unlock()
	}()
}

// fThenE establishes F→E — fine on its own.
func fThenE(e *E, f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// tree nests one lock class under itself: instance order inside a
// class is outside a class-level abstraction's reach, so no self-edge
// is reported.
type tree struct {
	mu   sync.Mutex
	kids []*tree
}

func (t *tree) lockKids() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range t.kids {
		k.mu.Lock()
		k.mu.Unlock()
	}
}
