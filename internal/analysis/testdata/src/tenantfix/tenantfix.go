// Package tenantfix exercises tenantcheck: request-derived strings
// must pass core.ValidateTenant or core.NewTenantStore before they
// reach a raw KV operation's key arguments. Laundering through locals,
// concatenation, helpers, or a decoded body does not help; validation
// does.
package tenantfix

import (
	"encoding/json"
	"net/http"

	"pstorm/internal/core"
)

// KV mirrors the raw core.KV verbs; tenantcheck treats KV-verb methods
// on module-declared interfaces as sinks.
type KV interface {
	Put(table, row, column string, value []byte) error
	Get(table, row, column string) ([]byte, bool, error)
}

type srv struct{ kv KV }

// handlePut builds a row key straight from the request: the escape.
func (s *srv) handlePut(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get("X-Tenant")
	key := "profiles/" + tenant + "!" + r.URL.Query().Get("job")
	s.kv.Put("profiles", key, "spec", nil) // want `request-derived value reaches raw KV op KV\.Put`
}

// handleLaunder hides the sink behind a helper: the summary carries
// the parameter to the Put inside store, so the tainted call site is
// the finding.
func (s *srv) handleLaunder(w http.ResponseWriter, r *http.Request) {
	s.store(r.Header.Get("X-Tenant")) // want `request-derived value reaches raw KV op`
}

func (s *srv) store(tenant string) {
	s.kv.Put("profiles", "p/"+tenant, "spec", nil)
}

// handleDecoded taints through a decoded JSON body.
func (s *srv) handleDecoded(w http.ResponseWriter, r *http.Request) {
	var req struct{ Tenant, Job string }
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	s.kv.Put("profiles", req.Tenant+"!"+req.Job, "spec", nil) // want `request-derived value reaches raw KV op KV\.Put`
}

// handleValidated clears the taint through ValidateTenant: clean.
func (s *srv) handleValidated(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get("X-Tenant")
	if err := core.ValidateTenant(tenant); err != nil {
		http.Error(w, "bad tenant", http.StatusBadRequest)
		return
	}
	s.kv.Put("profiles", "p/"+tenant, "spec", nil)
}

// handleStore goes through NewTenantStore — the sanctioned path; the
// Store's own key building is the enforcement boundary, not a sink.
func handleStore(kv core.KV, w http.ResponseWriter, r *http.Request) {
	st, err := core.NewTenantStore(r.Context(), kv, r.Header.Get("X-Tenant"))
	if err != nil {
		http.Error(w, "bad tenant", http.StatusBadRequest)
		return
	}
	_ = st
}

// constantKeys never touch request data: clean even at a raw sink.
func (s *srv) sweep() {
	s.kv.Put("profiles", "system/bounds", "spec", nil)
}
