// Package obsfix exercises obscheck: obs names must be constant
// lowercase_snake, and one name must keep one metric kind.
package obsfix

import "pstorm/internal/obs"

const promotedName = "requests_total" // named constants are fine

func register(r *obs.Registry, shard string) {
	r.Counter(promotedName, "shard", shard) // allowed: constant name, variable label value
	r.Histogram("op_latency_ms", nil)       // allowed
	r.Emit("region_moved", nil)             // allowed

	// The fault-tolerance metric family: constant names, one kind each.
	r.Counter("store_corruptions_detected_total")      // allowed
	r.Gauge("breaker_state", "server", shard)          // allowed
	r.Counter("hedged_reads_total")                    // allowed
	r.Counter("quarantine_rebuilds_total")             // allowed
	r.Counter("matcher_degraded_total", "side", shard) // allowed

	// The serving-tier metric family: constant names, one kind each.
	r.Counter("gateway_requests_total", "endpoint", shard)            // allowed
	r.Counter("gateway_coalesce_hits_total")                          // allowed
	r.Counter("gateway_coalesce_leaders_total")                       // allowed
	r.Counter("gateway_shed_total", "reason", shard, "tenant", shard) // allowed
	r.Counter("gateway_degrade_trips_total")                          // allowed
	r.GaugeFunc("gateway_inflight", func() float64 { return 0 })      // allowed
	r.GaugeFunc("gateway_tenants", func() float64 { return 0 })       // allowed
	r.Gauge("gateway_tenant_inflight", "tenant", shard)               // allowed
	r.Histogram("gateway_request_latency_ms", nil, "endpoint", shard) // allowed

	// The control-plane HA metric family: constant names, one kind each.
	r.Counter("dstore_master_elections_total")                 // allowed
	r.Counter("dstore_master_stepdowns_total")                 // allowed
	r.Gauge("dstore_master_leader")                            // allowed
	r.Counter("dstore_master_journal_appends_total")           // allowed
	r.Counter("dstore_master_journal_checkpoints_total")       // allowed
	r.Counter("dstore_master_journal_tails_total")             // allowed
	r.Counter("dstore_rs_stale_master_total", "server", shard) // allowed

	// The storage-engine metric family: constant names, one kind each.
	r.Counter("compaction_tier_merges_total")        // allowed
	r.Histogram("compaction_tier_segments", nil)     // allowed
	r.Histogram("sstable_block_compress_ratio", nil) // allowed
	r.Histogram("scan_parallel_fanout", nil)         // allowed
	r.Counter("hedged_scans_total")                  // allowed

	r.Counter("BadCamelCase")   // want `not lowercase_snake`
	r.Gauge("trailing_dash-")   // want `not lowercase_snake`
	r.Counter("dyn_" + shard)   // want `must be a compile-time string constant`
	r.Emit("evt."+shard, nil)   // want `must be a compile-time string constant`
	r.Counter("kind_collision") // want `registered as multiple kinds`
	r.Gauge("kind_collision")   // want `registered as multiple kinds`
}
