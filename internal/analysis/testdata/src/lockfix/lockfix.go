// Package lockfix exercises lockcheck: network calls between Lock and
// Unlock (or after a deferred Unlock) in one function are findings.
package lockfix

import (
	"net"
	"net/http"
	"sync"
)

type server struct {
	mu sync.Mutex
	rw sync.RWMutex
	hc *http.Client
}

func (s *server) lockedDo(req *http.Request) {
	s.mu.Lock()
	s.hc.Do(req) // want `Client\.Do called while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) deferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	http.Get("http://example.test") // want `http\.Get called while s\.mu is held`
}

func (s *server) readLocked() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	net.Dial("tcp", "example.test:80") // want `net\.Dial called while s\.rw is held`
}

func (s *server) unlockedIsFine(req *http.Request) {
	s.mu.Lock()
	addr := "example.test:80"
	s.mu.Unlock()
	net.Dial("tcp", addr) // allowed: lock released first
}

func (s *server) goroutineIsItsOwnScope() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		http.Get("http://example.test") // allowed: separate goroutine, lock not held there
	}()
}

func (s *server) nonNetworkUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	net.JoinHostPort("h", "80") // allowed: net helper, not a dial
}

func (s *server) tryLocked(req *http.Request) {
	if s.mu.TryLock() {
		defer s.mu.Unlock()
		s.hc.Do(req) // want `Client\.Do called while s\.mu is held`
	}
}

func (s *server) tryReadLocked() {
	if !s.rw.TryRLock() {
		return
	}
	net.Dial("tcp", "example.test:80") // want `net\.Dial called while s\.rw is held`
	s.rw.RUnlock()
}
