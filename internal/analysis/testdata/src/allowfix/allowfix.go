// Package allowfix exercises the //pstorm:allow directive: both the
// same-line and line-above forms suppress a finding, so the whole
// package must come back clean.
package allowfix

import "time"

func sameLine() time.Time {
	return time.Now() //pstorm:allow clockcheck fixture demonstrates same-line suppression
}

func lineAbove() time.Time {
	//pstorm:allow clockcheck fixture demonstrates line-above suppression
	return time.Now()
}
