// Package walfix exercises walerrcheck: discarded errors from
// WAL/flush/sync/persist-path calls are findings.
package walfix

import "os"

type wal struct {
	f *os.File
}

func (w *wal) logCell(b []byte) error {
	_, err := w.f.Write(b)
	return err
}

func (w *wal) close() error { return w.f.Close() }

func flushAll(w *wal) error { return nil }

func bareStatement(w *wal) {
	w.logCell(nil) // want `discarded error from durability call wal\.logCell`
}

func blankAssign(w *wal) {
	_ = w.f.Sync() // want `discarded error from durability call File\.Sync`
}

func deferredClose(w *wal) {
	defer w.close() // want `discarded error from durability call wal\.close`
}

func namedFunc(w *wal) {
	flushAll(w) // want `discarded error from durability call flushAll`
}

func handled(w *wal) error {
	if err := w.logCell(nil); err != nil { // allowed: error checked
		return err
	}
	return w.f.Sync() // allowed: error returned
}

func unrelated(w *wal) {
	w.f.Name() // allowed: no error returned, not a durability call
}
