package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// leakCheck ties every goroutine spawned in a long-lived server
// package to a lifecycle: the chaos harness's leak budget and the
// fleet gateway's restart story both assume Close actually quiesces
// the process. A `go` statement passes when, somewhere on its body's
// path (interprocedurally, via bottom-up summaries), it:
//
//   - calls Done on a sync.WaitGroup (someone Waits for it);
//   - receives or selects on a stop-style channel (chan struct{}, or a
//     name like stop/done/quit/closing/shutdown);
//   - uses a context.Context — calls a method on one or passes one
//     into a call — so cancellation reaches it;
//
// or is a provably bounded one-shot: no loops or selects, and every
// channel send targets a channel created with a buffer in the
// enclosing function (the hedged-read pattern: the goroutine runs one
// operation, delivers without blocking, and exits).
//
// Scope is limited to the packages that run for the process lifetime —
// hstore, dstore, gateway, cluster — because a short-lived tool
// leaking a goroutine until exit is not a bug worth a directive.
type leakCheck struct{}

func (leakCheck) Name() string { return "leakcheck" }
func (leakCheck) Doc() string {
	return "goroutines in server packages are tied to a WaitGroup, stop channel, or context"
}

var leakScopePkgs = []string{"hstore", "dstore", "gateway", "cluster", "leakfix"}

func leakScoped(pkgPath string) bool {
	for _, s := range leakScopePkgs {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

var stopChanName = regexp.MustCompile(`(?i)stop|done|quit|clos|shutdown|exit`)

func (leakCheck) Check(m *Module, report func(token.Position, string)) {
	g := m.Graph()

	// Bottom-up: does calling fn put lifecycle observation on the
	// goroutine's path? Local evidence in the declaration and its
	// synchronously-executed literals, plus any non-go callee that
	// observes. (A managed goroutine fn itself spawns is fn's own
	// business — KindGo edges don't make the caller observed.)
	localEv := make(map[*types.Func]bool)
	for _, fs := range moduleScopes(m.Pkgs) {
		fn := fs.Fn()
		if fn == nil || fs.GoLit {
			continue
		}
		if !localEv[fn] && lifecycleEvidence(fs.Pkg, fs.Body, nil) {
			localEv[fn] = true
		}
	}
	observes := BottomUp(g, func(n *CGNode, get func(*types.Func) bool) bool {
		if localEv[n.Fn] {
			return true
		}
		for _, e := range n.Out {
			if e.Kind != KindGo && get(e.Callee.Fn) {
				return true
			}
		}
		return false
	}, func(a, b bool) bool { return a == b })
	getObs := func(fn *types.Func) bool { return fn != nil && observes[fn.Origin()] }

	for _, pkg := range m.Pkgs {
		if !leakScoped(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					st, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if goStmtTied(pkg, decl, st, getObs) {
						return true
					}
					report(pkg.Fset.Position(st.Pos()),
						"goroutine is not tied to a WaitGroup, stop channel, or context — Close cannot reap it (bound its lifetime or annotate //pstorm:allow leakcheck <reason>)")
					return true
				})
			}
		}
	}
}

// goStmtTied decides one go statement: direct literal bodies are
// inspected in place, named callees consult their bottom-up summary,
// and the bounded-one-shot escape hatch applies to literals only.
func goStmtTied(pkg *Package, decl *ast.FuncDecl, st *ast.GoStmt, observes func(*types.Func) bool) bool {
	if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
		if lifecycleEvidence(pkg, lit.Body, observes) {
			return true
		}
		return boundedOneShot(pkg, decl, lit)
	}
	// go rs.heartbeatLoop(): the callee's own body must observe.
	if fn := calleeFunc(pkg, st.Call); fn != nil && observes(fn) {
		return true
	}
	// A context handed to the spawned call ties it too.
	for _, a := range st.Call.Args {
		if isContextExpr(pkg, a) {
			return true
		}
	}
	return false
}

// lifecycleEvidence inspects a body (including nested literals — a
// closure's observation still runs on this goroutine unless it is
// itself go-spawned, and over-approximating there is the safe
// direction) for any lifecycle tie. observes may be nil when callee
// summaries are not yet available.
func lifecycleEvidence(pkg *Package, body ast.Node, observes func(*types.Func) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && stopStyleChan(pkg, x.X) {
				found = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pkg, x); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
					found = true // wg.Done()
				}
				if observes != nil && observes(fn) {
					found = true
				}
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && isContextExpr(pkg, sel.X) {
				found = true // ctx.Done()/Err()/Deadline()...
			}
			for _, a := range x.Args {
				if isContextExpr(pkg, a) {
					found = true // cancellation propagates into the call
				}
			}
		}
		return !found
	})
	return found
}

// stopStyleChan reports whether a received-from expression looks like a
// lifecycle channel: element type struct{} (the universal stop-signal
// shape) or a stop-family name.
func stopStyleChan(pkg *Package, e ast.Expr) bool {
	if tv, ok := pkg.Info.Types[e]; ok {
		if ch, ok := tv.Type.Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return stopChanName.MatchString(x.Name)
	case *ast.SelectorExpr:
		return stopChanName.MatchString(x.Sel.Name)
	}
	return false
}

func isContextExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Type != nil && tv.Type.String() == "context.Context"
}

// boundedOneShot recognizes the hedged-request idiom: a literal with no
// loops or selects whose every send targets a channel made with a
// buffer in the enclosing function — it performs one operation,
// delivers its result without blocking, and exits.
func boundedOneShot(pkg *Package, decl *ast.FuncDecl, lit *ast.FuncLit) bool {
	ok := true
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt:
			ok = false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ok = false // a receive can block forever
			}
		case *ast.SendStmt:
			if !bufferedChanVar(pkg, decl, x.Chan) {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// bufferedChanVar reports whether e names a variable that the
// enclosing declaration creates with make(chan T, n>0) (a non-constant
// capacity counts — the site chose a buffer deliberately).
func bufferedChanVar(pkg *Package, decl *ast.FuncDecl, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return false
	}
	buffered := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if buffered {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, l := range as.Lhs {
			lid, ok := l.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			def := pkg.Info.Defs[lid]
			if def == nil {
				def = pkg.Info.Uses[lid]
			}
			if def != obj {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if fid, ok := call.Fun.(*ast.Ident); ok && fid.Name == "make" {
				buffered = true
			}
		}
		return !buffered
	})
	return buffered
}
