package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// clockCheck flags bare calls to time.Now and time.Since. Profiles are
// deterministic, comparable measurements; a stray wall-clock read in a
// data or retry path silently breaks reproducibility (the PR 2 hstore
// cell-clock bug). Taking the *value* time.Now — the idiom every
// injectable clock here uses for its default (MasterOptions.Now,
// hstore Server.WallClock, obs.Registry.Now) — is allowed; only call
// expressions are flagged.
type clockCheck struct{}

func (clockCheck) Name() string { return "clockcheck" }
func (clockCheck) Doc() string {
	return "no bare time.Now()/time.Since() calls; inject a clock or annotate"
}

func (clockCheck) Check(m *Module, report func(token.Position, string)) {
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				switch fn.Name() {
				case "Now", "Since":
					report(pkg.Fset.Position(call.Pos()),
						fmt.Sprintf("bare time.%s() — route through an injectable clock (MasterOptions.Now / WallClock / obs.Registry.Now) or annotate //pstorm:allow clockcheck <reason>", fn.Name()))
				}
				return true
			})
		}
	}
}
