package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// obsCheck validates observability names at every obs.Registry call
// site: metric names and event types must be compile-time string
// constants in lowercase_snake form, and one name must never be
// registered as two different metric kinds (a counter in one file and
// a gauge in another silently split or shadow each other when
// snapshots merge). Dynamic names (concatenation, Sprintf) defeat
// grep, dashboards, and the merge logic — variability belongs in
// label values, which stay unchecked.
type obsCheck struct{}

func (obsCheck) Name() string { return "obscheck" }
func (obsCheck) Doc() string {
	return "obs metric/event names are constant lowercase_snake and kind-unique"
}

var snakeName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// obsRegistrars maps obs.Registry method names to the metric kind they
// register. Emit's event types share the spelling rules but not the
// uniqueness rule (one event type is emitted from many sites).
var obsRegistrars = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"GaugeFunc": "gauge_func",
	"Histogram": "histogram",
	"Emit":      "",
}

func (obsCheck) Check(m *Module, report func(token.Position, string)) {
	type reg struct {
		kind string
		pos  token.Position
	}
	byName := make(map[string][]reg)
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				named := recvTypeName(sig)
				if named == nil || named.Name() != "Registry" {
					return true
				}
				kind, isRegistrar := obsRegistrars[fn.Name()]
				if !isRegistrar {
					return true
				}
				pos := pkg.Fset.Position(call.Args[0].Pos())
				tv, hasTV := pkg.Info.Types[call.Args[0]]
				if !hasTV || tv.Value == nil || tv.Value.Kind() != constant.String {
					report(pos, fmt.Sprintf("obs name passed to %s must be a compile-time string constant, not built at the call site (got %s) — put variability in label values", fn.Name(), types.ExprString(call.Args[0])))
					return true
				}
				name := constant.StringVal(tv.Value)
				if !snakeName.MatchString(name) {
					report(pos, fmt.Sprintf("obs name %q is not lowercase_snake (want %s)", name, snakeName))
					return true
				}
				if kind != "" {
					byName[name] = append(byName[name], reg{kind, pos})
				}
				return true
			})
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		regs := byName[name]
		kinds := make(map[string]bool)
		for _, r := range regs {
			kinds[r.kind] = true
		}
		if len(kinds) < 2 {
			continue
		}
		list := make([]string, 0, len(kinds))
		for k := range kinds {
			list = append(list, k)
		}
		sort.Strings(list)
		for _, r := range regs {
			report(r.pos, fmt.Sprintf("metric %q registered as multiple kinds (%s) — pick one kind per name", name, strings.Join(list, ", ")))
		}
	}
}
