package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"testing"
)

// TestHandlerReachability: the call graph finds handler roots by
// signature (including the closure-registration pattern) and
// reachability crosses plain calls but respects declaration
// boundaries.
func TestHandlerReachability(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "ctxfix")
	m := NewModule([]*Package{pkg})
	reach := m.HandlerReachable()

	byName := func(name string) bool {
		if pkg.Types.Scope().Lookup(name) == nil {
			t.Fatalf("function %s not found", name)
		}
		for f := range reach {
			if f.Name() == name {
				return true
			}
		}
		return false
	}

	for _, want := range []string{"handle", "fetch", "refresh", "todoOnPath", "register", "lookup"} {
		if !byName(want) {
			t.Errorf("%s should be handler-reachable", want)
		}
	}
	if byName("offline") {
		t.Errorf("offline must not be handler-reachable")
	}

	roots := m.Graph().HandlerRoots()
	rootNames := make(map[string]bool)
	for _, r := range roots {
		rootNames[r.Fn.Name()] = true
	}
	if !rootNames["handle"] || !rootNames["todoOnPath"] || !rootNames["register"] {
		t.Errorf("handler roots = %v, want handle, todoOnPath, and register (closure pattern)", rootNames)
	}
}

// TestBottomUpSummaries: summaries compose callees-first — a fact true
// of a leaf is visible two callers up.
func TestBottomUpSummaries(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "lockorderfix")
	g := NewModule([]*Package{pkg}).Graph()

	// Summary: "transitively calls lockA".
	callsLockA := BottomUp(g, func(n *CGNode, get func(fn *types.Func) bool) bool {
		if n.Fn.Name() == "lockA" {
			return true
		}
		for _, e := range n.Out {
			if get(e.Callee.Fn) {
				return true
			}
		}
		return false
	}, func(a, b bool) bool { return a == b })

	want := map[string]bool{"lockA": true, "takeBA": true, "takeAB": false, "cThenD": false}
	for _, n := range g.Order {
		if expect, ok := want[n.Fn.Name()]; ok && callsLockA[n.Fn] != expect {
			t.Errorf("callsLockA[%s] = %v, want %v", n.Fn.Name(), callsLockA[n.Fn], expect)
		}
	}
}

// TestBuildCFG: branch/join and loop back-edge structure on a small
// hand-parsed function.
func TestBuildCFG(t *testing.T) {
	src := `package p
func f(c bool, xs []int) int {
	n := 0
	if c {
		n = 1
	} else {
		n = 2
	}
	for _, x := range xs {
		n += x
	}
	return n
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	decl := file.Decls[0].(*ast.FuncDecl)
	cfg := BuildCFG(decl.Body)

	if cfg.Entry == nil || len(cfg.Blocks) == 0 {
		t.Fatal("empty CFG")
	}
	// Entry holds the init assignment and the if condition, then
	// branches two ways.
	if got := len(cfg.Entry.Succs); got != 2 {
		t.Errorf("entry successors = %d, want 2 (then/else)", got)
	}
	// Some block must loop back (the range head is its body's
	// successor's successor).
	hasBackEdge := false
	seenIdx := make(map[*Block]int)
	for i, b := range cfg.Blocks {
		seenIdx[b] = i
	}
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if seenIdx[s] <= seenIdx[b] && s != b {
				hasBackEdge = true
			}
		}
	}
	if !hasBackEdge {
		t.Error("range loop produced no back edge")
	}
}

// TestForwardSolver: constant reachability of held-style state through
// branches — after an if/else that locks on one arm only, the join
// must be the union (may-analysis).
func TestForwardSolver(t *testing.T) {
	src := `package p
import "sync"
func f(c bool, mu *sync.Mutex) {
	if c {
		mu.Lock()
	}
	work()
}
func work() {}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	decl := file.Decls[1].(*ast.FuncDecl) // Decls[0] is the import block
	cfg := BuildCFG(decl.Body)

	type S = map[string]bool
	flow := FlowFuncs[S]{
		Transfer: func(n ast.Node, s S) S {
			out := make(S, len(s))
			for k := range s {
				out[k] = true
			}
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
						out["mu"] = true
					}
				}
				return true
			})
			return out
		},
		Join: func(a, b S) S {
			out := make(S)
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b S) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Clone: func(s S) S {
			out := make(S, len(s))
			for k := range s {
				out[k] = true
			}
			return out
		},
	}
	sawWork := false
	ForwardVisit(cfg, make(S), flow, func(n ast.Node, s S) {
		ast.Inspect(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "work" {
					sawWork = true
					if !s["mu"] {
						t.Error("join after one-armed lock must include the lock (may-analysis)")
					}
				}
			}
			return true
		})
	})
	if !sawWork {
		t.Fatal("solver never reached the work() call")
	}
}

// TestBaselineApply: matching entries absorb findings, unmatched
// entries come back stale, unmatched findings survive.
func TestBaselineApply(t *testing.T) {
	root := string(filepath.Separator) + "mod"
	mk := func(file, checker, msg string) Finding {
		return Finding{Checker: checker, Msg: msg,
			Pos: token.Position{Filename: filepath.Join(root, filepath.FromSlash(file)), Line: 1}}
	}
	bl := &Baseline{Entries: []BaselineEntry{
		{Checker: "ctxcheck", File: "a/b.go", Msg: "Background", Desc: "debt"},
		{Checker: "ctxcheck", File: "a/gone.go", Msg: "Background", Desc: "paid off"},
	}}
	findings := []Finding{
		mk("a/b.go", "ctxcheck", "context.Background() in x"),
		mk("a/b.go", "clockcheck", "bare time.Now()"),
	}
	kept, stale := bl.Apply(findings, root)
	if len(kept) != 1 || kept[0].Checker != "clockcheck" {
		t.Errorf("kept = %v, want just the clockcheck finding", kept)
	}
	if len(stale) != 1 || stale[0].File != "a/gone.go" {
		t.Errorf("stale = %v, want the a/gone.go entry", stale)
	}
}

// TestCacheRoundTrip: same digest loads, different digest misses.
func TestCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	fs := []Finding{{Checker: "ctxcheck", Msg: "m", Pos: token.Position{Filename: "f.go", Line: 3}}}
	if err := SaveCache(path, "d1", fs); err != nil {
		t.Fatal(err)
	}
	got, ok := LoadCache(path, "d1")
	if !ok || len(got) != 1 || got[0] != fs[0] {
		t.Errorf("LoadCache(d1) = %v, %v; want the saved finding", got, ok)
	}
	if _, ok := LoadCache(path, "d2"); ok {
		t.Error("LoadCache with a different digest must miss")
	}
}
