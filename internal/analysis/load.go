package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the module (or a
// test fixture loaded by LoadDir). Checkers receive the parsed files
// alongside the type information so they can mix syntactic and
// semantic queries.
type Package struct {
	Path  string // import path ("pstorm/internal/hstore", or a synthetic fixture path)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves and type-checks packages with nothing beyond the
// standard library: imports inside the module are loaded from source
// under the module root, everything else (the standard library) goes
// through go/importer's source importer against GOROOT.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader returns a loader for the module rooted at modRoot. The
// module path is read from go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: modRoot,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Import implements types.Importer: module-internal paths load from
// source under the module root, anything else is delegated to the
// standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModRoot, rel), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test .go files of one
// directory under the given import path. Results are memoized by path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// LoadModule loads every non-test package under the module root,
// skipping testdata, hidden directories, and vendor. Packages are
// returned sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var pkgs []*Package
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
