package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The baseline is the second of the two exception mechanisms, for the
// findings a new checker surfaces in code that predates it. A
// //pstorm:allow directive marks a site that is *right* despite the
// rule; the baseline marks accepted debt — pre-existing findings that
// should not block CI today but must not multiply. The file is
// committed (vet-baseline.json at the module root), every entry
// carries a mandatory justification, and entries that stop matching
// anything are reported as stale so the file only ever shrinks.

// BaselineEntry matches one accepted finding.
type BaselineEntry struct {
	// Checker must equal the finding's checker name.
	Checker string `json:"checker"`
	// File is the module-relative, slash-separated path of the finding.
	File string `json:"file"`
	// Msg is a substring the finding's message must contain. Substring
	// (not equality) so a message wording tweak doesn't orphan entries;
	// keep it specific enough to match one hazard.
	Msg string `json:"msg"`
	// Desc is the mandatory justification: why this is accepted debt
	// and what retiring it would take.
	Desc string `json:"desc"`
}

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline; an entry without a justification is an error — undocumented
// exceptions are exactly what the mechanism exists to prevent.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	for i, e := range b.Entries {
		if e.Checker == "" || e.File == "" || e.Msg == "" {
			return nil, fmt.Errorf("baseline %s: entry %d needs checker, file, and msg", path, i)
		}
		if strings.TrimSpace(e.Desc) == "" {
			return nil, fmt.Errorf("baseline %s: entry %d (%s %s) has no justification — desc is mandatory", path, i, e.Checker, e.File)
		}
	}
	return &b, nil
}

// Apply splits findings into those the baseline accepts and those it
// does not, and returns the entries that matched nothing (stale debt
// that was paid off — the entry should be deleted).
func (b *Baseline) Apply(findings []Finding, root string) (kept []Finding, stale []BaselineEntry) {
	used := make([]bool, len(b.Entries))
	for _, f := range findings {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			rel = r
		}
		rel = filepath.ToSlash(rel)
		matched := false
		for i, e := range b.Entries {
			if e.Checker == f.Checker && e.File == rel && strings.Contains(f.Msg, e.Msg) {
				used[i] = true
				matched = true
			}
		}
		if !matched {
			kept = append(kept, f)
		}
	}
	for i, e := range b.Entries {
		if !used[i] {
			stale = append(stale, e)
		}
	}
	return kept, stale
}
