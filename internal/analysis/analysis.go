// Package analysis is pstorm's project-specific static analysis suite.
// It enforces, by tooling, the invariants the profile store's
// determinism and concurrency story depends on — invariants that were
// previously guarded only by reviewer memory.
//
// Intraprocedural checkers (each function judged on its own):
//
//   - clockcheck: no bare time.Now()/time.Since() calls; clocks are
//     injected (MasterOptions.Now, hstore WallClock, obs.Registry.Now)
//     so deterministic tests and reproducible profiles stay possible.
//   - randcheck: no global math/rand package-level calls; every
//     component draws from its own seeded *rand.Rand so two runs with
//     the same seed produce byte-identical profiles and models.
//   - lockcheck: no mutex held across a network/RPC call in the same
//     function — a latency/deadlock hazard in the master and region
//     servers. Read locks and TryLock-acquired locks count.
//   - walerrcheck: no discarded error from WAL/persist/flush/fsync
//     path calls; durability errors must be handled or returned.
//   - obscheck: metric and event names are compile-time constants in
//     lowercase_snake form, and one name is never registered as two
//     different metric kinds.
//
// Interprocedural checkers (built on the whole-module call graph and
// dataflow core in callgraph.go / dataflow.go / taint.go):
//
//   - lockorder: the global mutex-acquisition-order graph (which lock
//     classes are acquired while which others are held, across function
//     and package boundaries) must be acyclic — a cycle is a potential
//     deadlock even when every individual function looks fine.
//   - ctxcheck: functions reachable from HTTP handlers thread their
//     context.Context: bare context.Background()/TODO() on a
//     handler-reachable path is a finding, and context.WithoutCancel
//     always needs a //pstorm:allow reason.
//   - tenantcheck: request-derived strings (headers, query fields,
//     decoded request bodies) must not reach a KV row-key position
//     without flowing through core.ValidateTenant/NewTenantStore —
//     a raw "ftype/<tenant>!<jobID>" built from request input is a
//     cross-tenant escape hatch.
//   - leakcheck: goroutines spawned in long-lived server packages
//     (hstore, dstore, gateway, cluster) must be tied to a WaitGroup,
//     a stop channel, or a context on their path — or be provably
//     bounded one-shots — so Close actually closes.
//
// Justified exceptions carry a line directive, on the finding's line
// or the line above:
//
//	//pstorm:allow <checker> <reason>
//
// The reason is mandatory; an unknown checker name in a directive is
// itself reported; and a directive that no longer suppresses anything
// is reported as an unusedallow finding — so the exception list stays
// auditable and cannot rot silently. Findings that predate a checker
// (accepted tech debt) live in the committed baseline file instead
// (see baseline.go): new violations fail, old ones are tracked.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one report from one checker. All fields are exported and
// JSON-serializable so pstorm-vet -json and the summary cache can
// round-trip findings losslessly.
type Finding struct {
	Checker string         `json:"checker"`
	Pos     token.Position `json:"pos"`
	Msg     string         `json:"msg"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Checker, f.Msg)
}

// Module is the loaded module plus lazily built whole-program facts
// that checkers share: today the call graph (with HTTP-handler roots
// and handler-reachability) built once per Run, tomorrow whatever the
// next interprocedural checker needs. Sharing the facts here keeps a
// nine-checker run at one call-graph construction instead of four.
type Module struct {
	Pkgs []*Package

	cg        *CallGraph
	reachable map[*types.Func]bool
}

// NewModule wraps loaded packages for checking.
func NewModule(pkgs []*Package) *Module { return &Module{Pkgs: pkgs} }

// Graph returns the module call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	if m.cg == nil {
		m.cg = buildCallGraph(m.Pkgs)
	}
	return m.cg
}

// HandlerReachable returns the set of functions reachable from HTTP
// handler roots (see CallGraph.HandlerRoots), computed once per Run.
func (m *Module) HandlerReachable() map[*types.Func]bool {
	if m.reachable == nil {
		g := m.Graph()
		m.reachable = g.Reachable(g.HandlerRoots())
	}
	return m.reachable
}

// Checker inspects the loaded module and reports findings.
type Checker interface {
	// Name is the identifier used in output and //pstorm:allow directives.
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Check runs over the whole module at once (many checks — metric
	// name uniqueness, lock ordering, handler reachability — are
	// cross-package).
	Check(m *Module, report func(pos token.Position, msg string))
}

// Checkers returns the full suite, in output order.
func Checkers() []Checker {
	return []Checker{
		clockCheck{},
		randCheck{},
		lockCheck{},
		walErrCheck{},
		obsCheck{},
		lockOrderCheck{},
		ctxCheck{},
		tenantCheck{},
		leakCheck{},
	}
}

// CheckerByName returns the named checker, or nil.
func CheckerByName(name string) Checker {
	for _, c := range Checkers() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// directiveChecker is the pseudo-checker name for problems with
// //pstorm:allow directives themselves. Those findings are not
// suppressible.
const directiveChecker = "directive"

// unusedAllowChecker is the pseudo-checker name for //pstorm:allow
// directives that no longer suppress any finding. Like directive
// findings, these are not suppressible — the fix is deleting the stale
// directive, not excusing it.
const unusedAllowChecker = "unusedallow"

const directivePrefix = "//pstorm:allow"

type directive struct {
	pos     token.Position
	checker string
	reason  string
	used    bool
}

// collectDirectives scans every comment of every file for
// //pstorm:allow lines. Malformed directives (missing reason, unknown
// checker name) are reported as findings so exceptions cannot rot
// silently.
func collectDirectives(pkgs []*Package, known map[string]bool, report func(Finding)) map[string]map[int][]*directive {
	byFile := make(map[string]map[int][]*directive)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, directivePrefix)
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						report(Finding{directiveChecker, pos, "pstorm:allow directive needs a checker name and a reason"})
						continue
					}
					name := fields[0]
					if !known[name] {
						report(Finding{directiveChecker, pos, fmt.Sprintf("pstorm:allow names unknown checker %q", name)})
						continue
					}
					reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
					if reason == "" {
						report(Finding{directiveChecker, pos, fmt.Sprintf("pstorm:allow %s needs a reason", name)})
						continue
					}
					m := byFile[pos.Filename]
					if m == nil {
						m = make(map[int][]*directive)
						byFile[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], &directive{pos: pos, checker: name, reason: reason})
				}
			}
		}
	}
	return byFile
}

// suppressed reports whether a finding is covered by a directive on
// its own line or the line immediately above, marking the directive
// used so stale ones can be reported.
func suppressed(f Finding, dirs map[string]map[int][]*directive) bool {
	if f.Checker == directiveChecker || f.Checker == unusedAllowChecker {
		return false
	}
	m := dirs[f.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range m[line] {
			if d.checker == f.Checker {
				d.used = true
				return true
			}
		}
	}
	return false
}

// Run executes the given checkers over pkgs and returns the surviving
// (non-suppressed) findings sorted by position. A nil checkers slice
// runs the full suite. Directives belonging to a checker that ran but
// suppressed nothing come back as unusedallow findings; directives for
// checkers outside the run are left alone, so a single-checker run
// (pstorm-vet -checker lockorder) never flags another checker's
// exceptions.
func Run(pkgs []*Package, checkers []Checker) []Finding {
	if checkers == nil {
		checkers = Checkers()
	}
	known := make(map[string]bool)
	for _, c := range Checkers() {
		known[c.Name()] = true
	}
	ran := make(map[string]bool)
	for _, c := range checkers {
		ran[c.Name()] = true
	}
	mod := NewModule(pkgs)
	var all []Finding
	collect := func(f Finding) { all = append(all, f) }
	dirs := collectDirectives(pkgs, known, collect)
	for _, c := range checkers {
		name := c.Name()
		c.Check(mod, func(pos token.Position, msg string) {
			collect(Finding{name, pos, msg})
		})
	}
	out := all[:0]
	for _, f := range all {
		if !suppressed(f, dirs) {
			out = append(out, f)
		}
	}
	for _, m := range dirs {
		for _, ds := range m {
			for _, d := range ds {
				if !d.used && ran[d.checker] {
					out = append(out, Finding{unusedAllowChecker, d.pos,
						fmt.Sprintf("pstorm:allow %s no longer suppresses any finding — delete the stale directive", d.checker)})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Checker < b.Checker
	})
	return out
}

// calleeFunc resolves the static callee of a call expression, or nil
// for calls through function values, conversions, and built-ins.
// Instantiated generic functions and methods resolve to their origin
// (the declared object), so call-graph nodes are keyed consistently.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}
