// Package analysis is pstorm's project-specific static analysis suite.
// It enforces, by tooling, the invariants the profile store's
// determinism and concurrency story depends on — invariants that were
// previously guarded only by reviewer memory:
//
//   - clockcheck: no bare time.Now()/time.Since() calls; clocks are
//     injected (MasterOptions.Now, hstore WallClock, obs.Registry.Now)
//     so deterministic tests and reproducible profiles stay possible.
//   - randcheck: no global math/rand package-level calls; every
//     component draws from its own seeded *rand.Rand so two runs with
//     the same seed produce byte-identical profiles and models.
//   - lockcheck: no mutex held across a network/RPC call in the same
//     function — a latency/deadlock hazard in the master and region
//     servers.
//   - walerrcheck: no discarded error from WAL/persist/flush/fsync
//     path calls; durability errors must be handled or returned.
//   - obscheck: metric and event names are compile-time constants in
//     lowercase_snake form, and one name is never registered as two
//     different metric kinds.
//
// Justified exceptions carry a line directive, on the finding's line
// or the line above:
//
//	//pstorm:allow <checker> <reason>
//
// The reason is mandatory and an unknown checker name in a directive
// is itself reported, so the exception list stays auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one report from one checker.
type Finding struct {
	Checker string
	Pos     token.Position
	Msg     string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Checker, f.Msg)
}

// Checker inspects the loaded module and reports findings.
type Checker interface {
	// Name is the identifier used in output and //pstorm:allow directives.
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Check runs over every package at once (some checks, like metric
	// name uniqueness, are cross-package).
	Check(pkgs []*Package, report func(pos token.Position, msg string))
}

// Checkers returns the full suite, in output order.
func Checkers() []Checker {
	return []Checker{
		clockCheck{},
		randCheck{},
		lockCheck{},
		walErrCheck{},
		obsCheck{},
	}
}

// directiveChecker is the pseudo-checker name for problems with
// //pstorm:allow directives themselves. Those findings are not
// suppressible.
const directiveChecker = "directive"

const directivePrefix = "//pstorm:allow"

type directive struct {
	pos     token.Position
	checker string
	reason  string
}

// collectDirectives scans every comment of every file for
// //pstorm:allow lines. Malformed directives (missing reason, unknown
// checker name) are reported as findings so exceptions cannot rot
// silently.
func collectDirectives(pkgs []*Package, known map[string]bool, report func(Finding)) map[string]map[int][]directive {
	byFile := make(map[string]map[int][]directive)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, directivePrefix)
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						report(Finding{directiveChecker, pos, "pstorm:allow directive needs a checker name and a reason"})
						continue
					}
					name := fields[0]
					if !known[name] {
						report(Finding{directiveChecker, pos, fmt.Sprintf("pstorm:allow names unknown checker %q", name)})
						continue
					}
					reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
					if reason == "" {
						report(Finding{directiveChecker, pos, fmt.Sprintf("pstorm:allow %s needs a reason", name)})
						continue
					}
					m := byFile[pos.Filename]
					if m == nil {
						m = make(map[int][]directive)
						byFile[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], directive{pos, name, reason})
				}
			}
		}
	}
	return byFile
}

// suppressed reports whether a finding is covered by a directive on
// its own line or the line immediately above.
func suppressed(f Finding, dirs map[string]map[int][]directive) bool {
	if f.Checker == directiveChecker {
		return false
	}
	m := dirs[f.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range m[line] {
			if d.checker == f.Checker {
				return true
			}
		}
	}
	return false
}

// Run executes the given checkers over pkgs and returns the surviving
// (non-suppressed) findings sorted by position. A nil checkers slice
// runs the full suite.
func Run(pkgs []*Package, checkers []Checker) []Finding {
	if checkers == nil {
		checkers = Checkers()
	}
	known := make(map[string]bool)
	for _, c := range Checkers() {
		known[c.Name()] = true
	}
	var all []Finding
	collect := func(f Finding) { all = append(all, f) }
	dirs := collectDirectives(pkgs, known, collect)
	for _, c := range checkers {
		name := c.Name()
		c.Check(pkgs, func(pos token.Position, msg string) {
			collect(Finding{name, pos, msg})
		})
	}
	out := all[:0]
	for _, f := range all {
		if !suppressed(f, dirs) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Checker < b.Checker
	})
	return out
}

// calleeFunc resolves the static callee of a call expression, or nil
// for calls through function values, conversions, and built-ins.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
