package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Findings cache: a full-suite run over the module is pure in the
// module's sources (directives live in source too), so CI can reuse a
// prior run's findings when nothing analyzed has changed. The key is a
// digest over go.mod, go.sum, every non-test .go file, the checker
// suite, and a schema version; the value is the post-suppression,
// pre-baseline finding list (the baseline file is applied after load
// precisely so editing it never invalidates the cache).

// cacheSchema versions the cache format and the analysis semantics.
// Bump when a checker's behavior changes without a source change
// being required (new checker, changed message, changed precision).
const cacheSchema = "pstorm-vet-cache-v1"

// SourceDigest hashes everything a full-suite run depends on.
func SourceDigest(rootDir string, checkerNames []string) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, cacheSchema)
	fmt.Fprintln(h, strings.Join(checkerNames, ","))
	var files []string
	for _, f := range []string{"go.mod", "go.sum"} {
		files = append(files, filepath.Join(rootDir, f))
	}
	err := filepath.WalkDir(rootDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	for _, path := range files {
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue // go.sum may be absent
		}
		if err != nil {
			return "", err
		}
		rel, _ := filepath.Rel(rootDir, path)
		fmt.Fprintf(h, "%s %d\n", filepath.ToSlash(rel), len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

type cacheFile struct {
	Digest   string    `json:"digest"`
	Findings []Finding `json:"findings"`
}

// LoadCache returns the cached findings if the file exists and its
// digest matches.
func LoadCache(path, digest string) ([]Finding, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var c cacheFile
	if err := json.Unmarshal(data, &c); err != nil || c.Digest != digest {
		return nil, false
	}
	return c.Findings, true
}

// SaveCache writes findings under the digest. Best effort: an
// unwritable cache path degrades to a cold run, not a failure.
func SaveCache(path, digest string, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	data, err := json.MarshalIndent(cacheFile{Digest: digest, Findings: findings}, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
