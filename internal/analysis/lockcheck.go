package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockCheck flags network/RPC calls made while a sync.Mutex or
// sync.RWMutex is held in the same function: a slow or hung peer then
// stalls every other caller of that lock (and a re-entrant path
// deadlocks). The master and region servers are the hot spots — their
// catalog and follower-set locks must never wrap an http.Client.Do,
// net.Dial, or a dstore client/conn call. The analysis is
// intraprocedural and order-based: Lock(), then a network call before
// the matching Unlock() (or with the Unlock deferred), is a finding.
// Read locks count the same as write locks (a reader blocking on a
// hung peer still starves every writer), and a successful
// TryLock/TryRLock holds the lock just like Lock does.
type lockCheck struct{}

func (lockCheck) Name() string { return "lockcheck" }
func (lockCheck) Doc() string {
	return "no mutex held across a network/RPC call in the same function"
}

type lockEvent struct {
	pos  token.Pos
	kind int    // 0 lock, 1 unlock, 2 deferred unlock, 3 net call
	key  string // lock receiver expression, or callee description for net calls
}

func (lockCheck) Check(m *Module, report func(token.Position, string)) {
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						checkLockScope(pkg, fn.Body, report)
					}
				case *ast.FuncLit:
					checkLockScope(pkg, fn.Body, report)
					return false // its body was just handled as its own scope
				}
				return true
			})
		}
	}
}

// checkLockScope walks one function body (excluding nested function
// literals, which are separate scopes with separate lock lifetimes)
// and reports net calls made while any lock is held.
func checkLockScope(pkg *Package, body *ast.BlockStmt, report func(token.Position, string)) {
	deferred := make(map[*ast.CallExpr]bool)
	var events []lockEvent
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			deferred[x.Call] = true
		case *ast.CallExpr:
			if key, name, ok := mutexOp(pkg, x); ok {
				switch {
				case lockAcquires[name] || lockTryAcquires[name]:
					events = append(events, lockEvent{x.Pos(), 0, key})
				case deferred[x]:
					events = append(events, lockEvent{x.Pos(), 2, key})
				default:
					events = append(events, lockEvent{x.Pos(), 1, key})
				}
				return true
			}
			if desc, ok := netCall(pkg, x); ok {
				events = append(events, lockEvent{x.Pos(), 3, desc})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]bool)
	for _, e := range events {
		switch e.kind {
		case 0:
			held[e.key] = true
		case 1:
			delete(held, e.key)
		case 2:
			held[e.key] = true // deferred unlock: held for the rest of the function
		case 3:
			if len(held) > 0 {
				locks := make([]string, 0, len(held))
				for k := range held {
					locks = append(locks, k)
				}
				sort.Strings(locks)
				report(pkg.Fset.Position(e.pos),
					fmt.Sprintf("%s called while %s is held — release the lock before network/RPC calls", e.key, strings.Join(locks, ", ")))
			}
		}
	}
}

// mutexOp reports whether call is a lock operation
// (Lock/RLock/TryLock/TryRLock/Unlock/RUnlock) on a sync.Mutex or
// sync.RWMutex, and returns the lock's receiver expression as its
// identity.
func mutexOp(pkg *Package, call *ast.CallExpr) (key, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	name = fn.Name()
	if lockAcquires[name] || lockTryAcquires[name] || lockReleases[name] {
		return types.ExprString(sel.X), name, true
	}
	return "", "", false
}

// netCall reports whether the call crosses (or can cross) the network:
// net.Dial*, anything in net/http, or a method on one of the module's
// RPC boundary types — a *Client or *...Conn declared in a dstore or
// hstore package.
func netCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	desc := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := recvTypeName(sig); named != nil {
			desc = named.Name() + "." + fn.Name()
			p := named.Pkg().Path()
			if strings.HasSuffix(p, "/dstore") || strings.HasSuffix(p, "/hstore") {
				ln := strings.ToLower(named.Name())
				if strings.HasSuffix(ln, "client") || strings.HasSuffix(ln, "conn") {
					return desc, true
				}
			}
		}
	} else {
		desc = fn.Pkg().Name() + "." + fn.Name()
	}
	switch fn.Pkg().Path() {
	case "net":
		return desc, strings.HasPrefix(fn.Name(), "Dial")
	case "net/http":
		return desc, true
	}
	return "", false
}

// recvTypeName returns the named type of a method receiver, looking
// through pointers.
func recvTypeName(sig *types.Signature) *types.TypeName {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
