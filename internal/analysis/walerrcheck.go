package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// walErrCheck flags discarded error returns from durability-path
// calls: WAL appends, flushes, fsyncs, persistence saves, compactions,
// truncations. A swallowed error there means an acked write that never
// reached disk — the exact failure class the hstore WAL exists to
// prevent. A call counts as durability-path when its name, or its
// receiver type's name, mentions the WAL/flush/sync/persist family and
// it returns an error; the error is "discarded" when the call is a
// bare statement, deferred, spawned with go, or its error slot is
// assigned to blank.
type walErrCheck struct{}

func (walErrCheck) Name() string { return "walerrcheck" }
func (walErrCheck) Doc() string {
	return "no discarded errors from WAL/persist/flush/fsync-path calls"
}

var persistName = regexp.MustCompile(`(?i)wal|flush|fsync|sync|persist|save|compact|truncate`)

func (walErrCheck) Check(m *Module, report func(token.Position, string)) {
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					checkDiscard(pkg, st.X, report)
				case *ast.DeferStmt:
					checkDiscard(pkg, st.Call, report)
				case *ast.GoStmt:
					checkDiscard(pkg, st.Call, report)
				case *ast.AssignStmt:
					checkBlankAssign(pkg, st, report)
				}
				return true
			})
		}
	}
}

// persistCall returns a description of the callee if it is an
// error-returning durability-path call.
func persistCall(pkg *Package, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	desc := fn.Name()
	match := persistName.MatchString(fn.Name())
	if sig.Recv() != nil {
		if named := recvTypeName(sig); named != nil {
			desc = named.Name() + "." + fn.Name()
			// sync.Mutex et al. have no error returns, so a type-name
			// match here ("wal", "sstable"…) is a persistence type.
			match = match || persistName.MatchString(named.Name())
		}
	}
	return desc, match
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func checkDiscard(pkg *Package, e ast.Expr, report func(token.Position, string)) {
	if desc, ok := persistCall(pkg, e); ok {
		report(pkg.Fset.Position(e.Pos()),
			fmt.Sprintf("discarded error from durability call %s — handle or return it (or annotate //pstorm:allow walerrcheck <reason>)", desc))
	}
}

// checkBlankAssign flags `_ = w.Sync()` style discards: a single
// durability call on the right with every error slot blanked.
func checkBlankAssign(pkg *Package, st *ast.AssignStmt, report func(token.Position, string)) {
	if len(st.Rhs) != 1 {
		return
	}
	desc, ok := persistCall(pkg, st.Rhs[0])
	if !ok {
		return
	}
	// The error is the last result; with n results it lands in the last
	// assignment slot.
	last := st.Lhs[len(st.Lhs)-1]
	if id, isIdent := last.(*ast.Ident); isIdent && id.Name == "_" {
		report(pkg.Fset.Position(st.Pos()),
			fmt.Sprintf("discarded error from durability call %s — handle or return it (or annotate //pstorm:allow walerrcheck <reason>)", desc))
	}
}
