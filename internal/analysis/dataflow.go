package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the intraprocedural half of the analysis core: a
// statement-level control-flow graph over one function body and a
// forward worklist solver over a caller-supplied join semilattice.
// Checkers pair it with the call graph's BottomUp driver: solve each
// function with a lattice whose transfer function consults callee
// summaries, then publish the function's own summary — the classic
// intra-then-inter layering.
//
// Granularity: blocks hold "shallow" nodes — simple statements and the
// bare condition/tag expressions of compound statements — never a
// compound statement itself, so a transfer function can deep-walk a
// node without seeing nested branches twice. Function literals inside
// a node are a different execution context (their bodies get their own
// CFGs); transfer functions must skip them, and skipLits does.

// Block is one straight-line run of nodes with its successor edges.
type Block struct {
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Blocks []*Block // creation order, deterministic
}

func (c *CFG) newBlock() *Block {
	b := &Block{}
	c.Blocks = append(c.Blocks, b)
	return b
}

func connect(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

type loopFrame struct {
	label     string
	brk, cont *Block
}

type cfgBuilder struct {
	cfg   *CFG
	loops []loopFrame
	// pendingLabel is set by a LabeledStmt so the labeled loop/switch
	// registers under that name.
	pendingLabel string
}

// BuildCFG builds the control-flow graph of one function body.
// Unsupported control flow (goto) conservatively terminates its path.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	entry := b.cfg.newBlock()
	b.cfg.Entry = entry
	b.stmtList(body.List, entry)
	return b.cfg
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findLoop returns break/continue targets for a label ("" = innermost).
func (b *cfgBuilder) findLoop(label string, needCont bool) *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := &b.loops[i]
		if needCont && f.cont == nil {
			continue // switch/select frames have no continue target
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		cur = b.stmt(s, cur)
		if cur == nil {
			return nil // the rest is unreachable
		}
	}
	return cur
}

// stmt threads one statement through the graph and returns the block
// where control continues, or nil when control cannot fall through.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(st.List, cur)

	case *ast.LabeledStmt:
		b.pendingLabel = st.Label.Name
		return b.stmt(st.Stmt, cur)

	case *ast.IfStmt:
		b.takeLabel()
		if st.Init != nil {
			cur.Nodes = append(cur.Nodes, st.Init)
		}
		cur.Nodes = append(cur.Nodes, st.Cond)
		after := b.cfg.newBlock()
		thenB := b.cfg.newBlock()
		connect(cur, thenB)
		if end := b.stmtList(st.Body.List, thenB); end != nil {
			connect(end, after)
		}
		if st.Else != nil {
			elseB := b.cfg.newBlock()
			connect(cur, elseB)
			if end := b.stmt(st.Else, elseB); end != nil {
				connect(end, after)
			}
		} else {
			connect(cur, after)
		}
		return after

	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			cur.Nodes = append(cur.Nodes, st.Init)
		}
		head := b.cfg.newBlock()
		connect(cur, head)
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, st.Cond)
		}
		after := b.cfg.newBlock()
		post := b.cfg.newBlock()
		if st.Post != nil {
			post.Nodes = append(post.Nodes, st.Post)
		}
		connect(post, head)
		if st.Cond != nil {
			connect(head, after)
		}
		body := b.cfg.newBlock()
		connect(head, body)
		b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: post})
		if end := b.stmtList(st.Body.List, body); end != nil {
			connect(end, post)
		}
		b.loops = b.loops[:len(b.loops)-1]
		return after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.cfg.newBlock()
		connect(cur, head)
		head.Nodes = append(head.Nodes, st.X)
		if st.Key != nil || st.Value != nil {
			head.Nodes = append(head.Nodes, rangeAssign(st))
		}
		after := b.cfg.newBlock()
		connect(head, after)
		body := b.cfg.newBlock()
		connect(head, body)
		b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: head})
		if end := b.stmtList(st.Body.List, body); end != nil {
			connect(end, head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		return after

	case *ast.SwitchStmt:
		return b.switchLike(st.Init, st.Tag, st.Body, cur, true)

	case *ast.TypeSwitchStmt:
		var tag ast.Expr
		if as, ok := st.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			tag = as.Rhs[0]
		} else if es, ok := st.Assign.(*ast.ExprStmt); ok {
			tag = es.X
		}
		return b.switchLike(st.Init, tag, st.Body, cur, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.cfg.newBlock()
		if len(st.Body.List) == 0 {
			return nil // empty select blocks forever
		}
		b.loops = append(b.loops, loopFrame{label: label, brk: after})
		for _, cc := range st.Body.List {
			comm := cc.(*ast.CommClause)
			blk := b.cfg.newBlock()
			connect(cur, blk)
			if comm.Comm != nil {
				blk.Nodes = append(blk.Nodes, comm.Comm)
			}
			if end := b.stmtList(comm.Body, blk); end != nil {
				connect(end, after)
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		return after

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, st)
		return nil

	case *ast.BranchStmt:
		label := ""
		if st.Label != nil {
			label = st.Label.Name
		}
		switch st.Tok {
		case token.BREAK:
			if f := b.findLoop(label, false); f != nil {
				connect(cur, f.brk)
			}
			return nil
		case token.CONTINUE:
			if f := b.findLoop(label, true); f != nil {
				connect(cur, f.cont)
			}
			return nil
		case token.FALLTHROUGH:
			// Handled by switchLike via block ordering; treating it as
			// fallthrough-to-next keeps the path alive there.
			return cur
		default: // goto: conservatively terminate the path
			return nil
		}

	default:
		// Simple statements: decls, assignments, sends, incdec, expr,
		// go, defer, empty.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchLike builds expression and type switches: every case body
// branches from the dispatch block and joins after; fallthrough edges
// connect consecutive case bodies.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, cur *Block, allowFallthrough bool) *Block {
	label := b.takeLabel()
	if init != nil {
		cur.Nodes = append(cur.Nodes, init)
	}
	if tag != nil {
		cur.Nodes = append(cur.Nodes, tag)
	}
	after := b.cfg.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, brk: after})
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		clauses = append(clauses, cc)
		blk := b.cfg.newBlock()
		connect(cur, blk)
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		caseBlocks = append(caseBlocks, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		end := b.stmtList(cc.Body, caseBlocks[i])
		if end != nil {
			if allowFallthrough && endsInFallthrough(cc.Body) && i+1 < len(caseBlocks) {
				connect(end, caseBlocks[i+1])
			} else {
				connect(end, after)
			}
		}
	}
	if !hasDefault {
		connect(cur, after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	return after
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// rangeAssign packages a range statement's key/value binding as a node
// so transfer functions see the assignment (value flows from st.X).
func rangeAssign(st *ast.RangeStmt) ast.Stmt {
	lhs := []ast.Expr{}
	if st.Key != nil {
		lhs = append(lhs, st.Key)
	}
	if st.Value != nil {
		lhs = append(lhs, st.Value)
	}
	return &ast.AssignStmt{Lhs: lhs, Tok: st.Tok, Rhs: []ast.Expr{st.X}, TokPos: st.For}
}

// FlowFuncs supplies the semilattice for a forward dataflow pass.
// Transfer must not mutate its input state; Clone is applied before a
// block's node chain runs.
type FlowFuncs[S any] struct {
	Transfer func(n ast.Node, s S) S
	Join     func(a, b S) S
	Equal    func(a, b S) bool
	Clone    func(S) S
}

// Forward runs the worklist to a fixpoint and returns each block's
// in-state.
func Forward[S any](c *CFG, init S, f FlowFuncs[S]) map[*Block]S {
	in := make(map[*Block]S, len(c.Blocks))
	in[c.Entry] = init
	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		s := f.Clone(in[blk])
		for _, n := range blk.Nodes {
			s = f.Transfer(n, s)
		}
		for _, succ := range blk.Succs {
			cur, ok := in[succ]
			var next S
			if !ok {
				next = f.Clone(s)
			} else {
				next = f.Join(cur, s)
			}
			if !ok || !f.Equal(next, cur) {
				in[succ] = next
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return in
}

// ForwardVisit runs Forward and then replays every reachable block,
// calling visit with each node's in-state (the state just before the
// node's transfer applies). Visit order is deterministic (block
// creation order).
func ForwardVisit[S any](c *CFG, init S, f FlowFuncs[S], visit func(n ast.Node, s S)) {
	in := Forward(c, init, f)
	for _, blk := range c.Blocks {
		s, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		s = f.Clone(s)
		for _, n := range blk.Nodes {
			visit(n, s)
			s = f.Transfer(n, s)
		}
	}
}

// funcScope is one analyzable body: a declared function or a function
// literal, with its owning declaration (nil Decl for a literal in
// package-level var initialization, which the loader's packages do not
// produce for function bodies we care about).
type funcScope struct {
	Pkg  *Package
	Decl *ast.FuncDecl // enclosing declaration; nil for package-level literals
	Lit  *ast.FuncLit  // non-nil when the scope is a literal
	Body *ast.BlockStmt
	// GoLit marks a literal launched directly by a go statement: its
	// body runs on a fresh goroutine, so lock state never flows in.
	GoLit bool
}

// Fn returns the declared function owning this scope, or nil.
func (fs funcScope) Fn() *types.Func {
	if fs.Decl == nil {
		return nil
	}
	return declFunc(fs.Pkg, fs.Decl)
}

// declFunc returns the *types.Func a declaration defines, or nil.
func declFunc(pkg *Package, decl *ast.FuncDecl) *types.Func {
	fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	return fn
}

// moduleScopes lists every function body in the module: declarations
// first, then literals (attributed to their enclosing declaration),
// in deterministic source order.
func moduleScopes(pkgs []*Package) []funcScope {
	var out []funcScope
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				out = append(out, funcScope{Pkg: pkg, Decl: decl, Body: decl.Body})
				collectLits(pkg, decl, decl.Body, &out)
			}
		}
	}
	return out
}

func collectLits(pkg *Package, decl *ast.FuncDecl, body ast.Node, out *[]funcScope) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				*out = append(*out, funcScope{Pkg: pkg, Decl: decl, Lit: lit, Body: lit.Body, GoLit: true})
				collectLits(pkg, decl, lit.Body, out)
				for _, arg := range x.Call.Args {
					collectLits(pkg, decl, arg, out)
				}
				return false
			}
		case *ast.FuncLit:
			*out = append(*out, funcScope{Pkg: pkg, Decl: decl, Lit: x, Body: x.Body})
			collectLits(pkg, decl, x.Body, out)
			return false
		}
		return true
	})
}

// skipLits walks the expression tree of one shallow CFG node, calling
// fn on every node but refusing to descend into function literals —
// a literal's body is a separate execution context with its own CFG.
func skipLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return fn(x)
	})
}
