package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ctxCheck enforces context threading on request paths. Inside any
// internal/ package, every call to context.Background() or
// context.TODO() is flagged: internal code is never the top of a call
// stack, so minting a root context there cuts cancellation and
// deadlines exactly where they matter most — a departed client keeps
// burning scans and a gateway timeout stops meaning anything. The rare
// legitimate detachment (an admin RPC owned by the process lifecycle,
// a bench harness that is its own top layer) carries a
// //pstorm:allow ctxcheck reason at the site.
//
// Outside internal/, Background/TODO is flagged only in functions
// reachable from an HTTP handler (per the module call graph).
// context.WithoutCancel is flagged everywhere, reachable or not —
// detaching lifetime is occasionally right (a singleflight leader must
// outlive the first caller) but never silently.
//
// Package main and the module root package are exempt from the
// Background/TODO rule: a process entry point and the exported
// convenience surface are where root contexts are legitimately minted.
type ctxCheck struct{}

func (ctxCheck) Name() string { return "ctxcheck" }
func (ctxCheck) Doc() string {
	return "internal packages thread their context; no bare Background()/TODO(), WithoutCancel needs a reason"
}

// internalPkg reports whether the package lives under an internal/
// subtree, where no function is a legitimate context root.
func internalPkg(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/")
}

func (ctxCheck) Check(m *Module, report func(token.Position, string)) {
	reachable := m.HandlerReachable()
	for _, pkg := range m.Pkgs {
		isMain := pkg.Types.Name() == "main"
		isInternal := internalPkg(pkg.Path)
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn := declFunc(pkg, decl)
				inReach := fn != nil && reachable[fn]
				// Function literals inherit the enclosing declaration's
				// reachability: a closure built on a handler path runs on
				// that path.
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeFunc(pkg, call)
					if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
						return true
					}
					switch callee.Name() {
					case "WithoutCancel":
						report(pkg.Fset.Position(call.Pos()),
							"context.WithoutCancel detaches the request lifetime — annotate //pstorm:allow ctxcheck <reason> if the detachment is intentional")
					case "Background", "TODO":
						if isMain {
							break
						}
						switch {
						case isInternal:
							report(pkg.Fset.Position(call.Pos()),
								fmt.Sprintf("context.%s() in %s — internal code is never a context root; accept a ctx from the caller or annotate //pstorm:allow ctxcheck <reason>", callee.Name(), funcDisplay(fn)))
						case inReach:
							report(pkg.Fset.Position(call.Pos()),
								fmt.Sprintf("context.%s() in %s, which is reachable from an HTTP handler — thread the request context instead of minting a root one", callee.Name(), funcDisplay(fn)))
						}
					}
					return true
				})
			}
		}
	}
}
