package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// ctxCheck enforces context threading on request paths. Any function
// reachable from an HTTP handler (per the module call graph) that
// calls context.Background() or context.TODO() is cutting the request
// context: cancellation and deadlines stop propagating exactly where
// they matter most, so a departed client keeps burning scans and a
// gateway timeout stops meaning anything. context.WithoutCancel is
// flagged everywhere, reachable or not — detaching lifetime is
// occasionally right (a singleflight leader must outlive the first
// caller) but never silently: it requires a //pstorm:allow ctxcheck
// reason at the site.
//
// Package main is exempt from the Background/TODO rule: a process
// entry point is where root contexts are legitimately minted.
type ctxCheck struct{}

func (ctxCheck) Name() string { return "ctxcheck" }
func (ctxCheck) Doc() string {
	return "handler-reachable code threads its context; no bare Background()/TODO(), WithoutCancel needs a reason"
}

func (ctxCheck) Check(m *Module, report func(token.Position, string)) {
	reachable := m.HandlerReachable()
	for _, pkg := range m.Pkgs {
		isMain := pkg.Types.Name() == "main"
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn := declFunc(pkg, decl)
				inReach := fn != nil && reachable[fn]
				// Function literals inherit the enclosing declaration's
				// reachability: a closure built on a handler path runs on
				// that path.
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeFunc(pkg, call)
					if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
						return true
					}
					switch callee.Name() {
					case "WithoutCancel":
						report(pkg.Fset.Position(call.Pos()),
							"context.WithoutCancel detaches the request lifetime — annotate //pstorm:allow ctxcheck <reason> if the detachment is intentional")
					case "Background", "TODO":
						if inReach && !isMain {
							report(pkg.Fset.Position(call.Pos()),
								fmt.Sprintf("context.%s() in %s, which is reachable from an HTTP handler — thread the request context instead of minting a root one", callee.Name(), funcDisplay(fn)))
						}
					}
					return true
				})
			}
		}
	}
}
