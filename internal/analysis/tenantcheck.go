package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// tenantCheck enforces the tenant-isolation boundary by taint
// analysis: a string derived from request input (headers, query
// parameters, decoded bodies) must not reach a raw KV operation's
// table/row/column argument without flowing through
// core.ValidateTenant or core.NewTenantStore first. A raw
// "ftype/<tenant>!<jobID>" key built from an unvalidated header is a
// cross-tenant escape: the gateway's quota, quorum, and isolation
// story all assume every key was minted under a validated namespace.
//
// The boundary has two sides, and only one is checked:
//
//   - Above the boundary (gateway, top-level API, tools): request data
//     is attacker-controlled; raw calls to core.KV / dstore clients
//     with request-derived strings are findings. Calls through
//     core.Store are fine — Store prefixes every key with the
//     validated namespace; that IS the sanctioned path.
//   - Below the boundary (internal/core itself, internal/dstore,
//     internal/hstore, and package main's /d/ wire protocol): raw keys
//     are the job description. Exempt.
//
// Taint rides the interprocedural summaries in taint.go, so a handler
// that launders a header through two helper functions before the Put
// is still caught at the outermost tainted call.
type tenantCheck struct{}

func (tenantCheck) Name() string { return "tenantcheck" }
func (tenantCheck) Doc() string {
	return "request-derived KV keys flow through ValidateTenant/NewTenantStore before any raw KV op"
}

// tenantExempt reports whether a package is below the tenant boundary.
func tenantExempt(pkgPath, pkgName string) bool {
	if pkgName == "main" {
		return true
	}
	for _, below := range []string{"internal/core", "internal/dstore", "internal/hstore"} {
		if strings.HasSuffix(pkgPath, below) || strings.Contains(pkgPath, below+"/") {
			return true
		}
	}
	return false
}

func (tenantCheck) Check(m *Module, report func(token.Position, string)) {
	g := m.Graph()
	isLocal := func(fn *types.Func) bool { return g.Node(fn) != nil }
	exemptFn := func(fn *types.Func) bool {
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		return tenantExempt(fn.Pkg().Path(), fn.Pkg().Name())
	}

	// Pass 1: bottom-up parameter summaries (which params reach returns
	// and sinks) for every non-exempt module function.
	var summaries map[*types.Func]taintSummary
	summaries = BottomUp(g, func(n *CGNode, get func(*types.Func) taintSummary) taintSummary {
		if n.Decl.Body == nil || exemptFn(n.Fn) {
			return taintSummary{}
		}
		sig := n.Fn.Type().(*types.Signature)
		seed := make(taintState)
		var paramBits uint64
		for i := 0; i < sig.Params().Len() && i < 63; i++ {
			bit := uint64(1) << uint(i)
			seed[sig.Params().At(i)] = bit
			paramBits |= bit
		}
		var sum taintSummary
		te := &taintEngine{
			pkg:     n.Pkg,
			isLocal: isLocal,
			exempt:  exemptFn,
			sum:     get,
			onSink: func(_ token.Pos, _ string, mask uint64) {
				sum.sink |= mask & paramBits
			},
			onReturn: func(mask uint64) {
				sum.ret |= mask & paramBits
			},
		}
		te.runTaint(n.Decl.Body, seed)
		return sum
	}, func(a, b taintSummary) bool { return a == b })
	getSum := func(fn *types.Func) taintSummary {
		if fn == nil {
			return taintSummary{}
		}
		return summaries[fn.Origin()]
	}

	// Pass 2: report. Every scope (declarations and literals) in a
	// non-exempt package, empty seed: taint enters only through
	// request-typed values, and a sink hit with the source bit set is a
	// finding.
	for _, fs := range moduleScopes(m.Pkgs) {
		if tenantExempt(fs.Pkg.Path, fs.Pkg.Types.Name()) {
			continue
		}
		pkg := fs.Pkg
		te := &taintEngine{
			pkg:     pkg,
			isLocal: isLocal,
			exempt:  exemptFn,
			sum:     getSum,
			onSink: func(pos token.Pos, desc string, mask uint64) {
				if mask&taintSrcBit == 0 {
					return
				}
				report(pkg.Fset.Position(pos),
					fmt.Sprintf("request-derived value reaches raw KV op %s without core.ValidateTenant/NewTenantStore — cross-tenant key escape", desc))
			},
		}
		te.runTaint(fs.Body, make(taintState))
	}
}
