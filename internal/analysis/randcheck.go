package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// randCheck flags package-level math/rand calls (rand.Intn,
// rand.Float64, rand.Seed, ...). The global source is shared mutable
// state: concurrent components draw from it in scheduling order, so
// two runs with the same seed diverge — the retry-lockstep bug PR 2
// fixed in the dstore client. Constructing seeded generators
// (rand.New, rand.NewSource, rand.NewZipf) and calling methods on a
// *rand.Rand is the required pattern and stays allowed.
type randCheck struct{}

// randConstructors are the package-level functions that build seeded
// generators rather than touching the global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func (randCheck) Name() string { return "randcheck" }
func (randCheck) Doc() string {
	return "no global math/rand calls; use a per-component seeded *rand.Rand"
}

func (randCheck) Check(m *Module, report func(token.Position, string)) {
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods on *rand.Rand / *rand.Zipf are fine
				}
				if randConstructors[fn.Name()] {
					return true
				}
				report(pkg.Fset.Position(call.Pos()),
					fmt.Sprintf("global math/rand call rand.%s — draw from a seeded *rand.Rand so equal seeds give identical runs", fn.Name()))
				return true
			})
		}
	}
}
