package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureLoader loads one testdata/src package under a synthetic
// import path, sharing a loader so module imports (pstorm/internal/obs
// in the obscheck fixture) resolve.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

func loadFixture(t *testing.T, l *Loader, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// wantRe matches "// want `regex`" (backquotes optional) expectation
// comments inside fixtures.
var wantRe = regexp.MustCompile("^// want\\s+`?([^`]+)`?\\s*$")

type expectation struct {
	line int
	re   *regexp.Regexp
}

func expectations(t *testing.T, pkg *Package) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regex %q: %v", m[1], err)
				}
				out = append(out, expectation{pkg.Fset.Position(c.Pos()).Line, re})
			}
		}
	}
	return out
}

// runFixture checks one checker against its fixture: every finding
// must be expected by a want comment on its line, and every want
// comment must be hit.
func runFixture(t *testing.T, name string, checker Checker) {
	t.Helper()
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, name)
	findings := Run([]*Package{pkg}, []Checker{checker})
	wants := expectations(t, pkg)

	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.line == f.Pos.Line && w.re.MatchString(f.Msg) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected finding matching %q, got none", name, w.line, w.re)
		}
	}
}

func TestClockcheckFixture(t *testing.T) { runFixture(t, "clockfix", clockCheck{}) }
func TestRandcheckFixture(t *testing.T)  { runFixture(t, "randfix", randCheck{}) }
func TestLockcheckFixture(t *testing.T)  { runFixture(t, "lockfix", lockCheck{}) }
func TestWalerrcheckFixture(t *testing.T) {
	runFixture(t, "walfix", walErrCheck{})
}
func TestObscheckFixture(t *testing.T) { runFixture(t, "obsfix", obsCheck{}) }

func TestLockorderFixture(t *testing.T) { runFixture(t, "lockorderfix", lockOrderCheck{}) }
func TestCtxcheckFixture(t *testing.T)  { runFixture(t, "ctxfix", ctxCheck{}) }

// The internal/ fixture path places the package under the
// strengthened arm of ctxcheck: Background/TODO is flagged without
// any handler reachability.
func TestCtxcheckInternalFixture(t *testing.T) {
	runFixture(t, "internal/ctxrootfix", ctxCheck{})
}
func TestTenantcheckFixture(t *testing.T) {
	runFixture(t, "tenantfix", tenantCheck{})
}
func TestLeakcheckFixture(t *testing.T) { runFixture(t, "leakfix", leakCheck{}) }

// TestUnusedAllow: a directive that suppresses nothing is reported —
// but only when the checker it names was part of the run, so a
// single-checker session never flags another checker's exceptions.
func TestUnusedAllow(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "unusedallowfix")

	findings := Run([]*Package{pkg}, nil)
	unused := 0
	for _, f := range findings {
		if f.Checker == unusedAllowChecker {
			unused++
			continue
		}
		t.Errorf("unexpected finding: %s", f)
	}
	if unused != 1 {
		t.Errorf("unusedallow findings = %d, want 1 (one stale directive in the fixture)", unused)
	}

	if fs := Run([]*Package{pkg}, []Checker{randCheck{}}); len(fs) != 0 {
		t.Errorf("randcheck-only run must not flag clockcheck directives, got:\n%s", joinFindings(fs))
	}
}

// TestAllowDirectiveSuppresses runs the full suite over a fixture
// whose findings are all annotated; nothing may survive.
func TestAllowDirectiveSuppresses(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "allowfix")
	if findings := Run([]*Package{pkg}, nil); len(findings) != 0 {
		t.Errorf("annotated fixture should be clean, got %d findings:\n%s",
			len(findings), joinFindings(findings))
	}
}

// TestMalformedDirectives: an unknown checker name or a missing reason
// in a //pstorm:allow is itself reported, and such a directive does
// not suppress the finding it sits next to.
func TestMalformedDirectives(t *testing.T) {
	l := fixtureLoader(t)
	pkg := loadFixture(t, l, "badallowfix")
	findings := Run([]*Package{pkg}, nil)

	var unknown, noReason, clock int
	for _, f := range findings {
		switch {
		case f.Checker == directiveChecker && strings.Contains(f.Msg, "unknown checker"):
			unknown++
		case f.Checker == directiveChecker && strings.Contains(f.Msg, "needs a reason"):
			noReason++
		case f.Checker == "clockcheck":
			clock++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if unknown != 1 {
		t.Errorf("unknown-checker directive findings = %d, want 1", unknown)
	}
	if noReason != 1 {
		t.Errorf("missing-reason directive findings = %d, want 1", noReason)
	}
	if clock != 2 {
		t.Errorf("clockcheck findings = %d, want 2 (malformed directives must not suppress)", clock)
	}
}

// TestModuleClean is the repo's own gate: the full suite over every
// non-test package must come back empty modulo the committed baseline,
// and every baseline entry must still match something. This is the
// same run CI does via cmd/pstorm-vet.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadModule found only %d packages — loader regression?", len(pkgs))
	}
	bl, err := LoadBaseline(filepath.Join(root, "vet-baseline.json"))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	// The baseline was drained by the context end-to-end refactor and
	// must stay empty: accepted debt is no longer a mechanism this
	// module uses, so any entry is a regression even if it still
	// matches a finding.
	for _, e := range bl.Entries {
		t.Errorf("vet-baseline.json entry (%s %s %q) — the baseline must stay empty", e.Checker, e.File, e.Msg)
	}
	kept, stale := bl.Apply(Run(pkgs, nil), root)
	if len(kept) != 0 {
		t.Errorf("module has %d findings outside the baseline:\n%s", len(kept), joinFindings(kept))
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (%s %s %q) matches nothing — delete it", e.Checker, e.File, e.Msg)
	}
}

func joinFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}
