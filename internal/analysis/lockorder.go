package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrderCheck enforces a global mutex-acquisition order: if lock
// class A is ever held while acquiring class B, no path anywhere in
// the module may hold B while acquiring A — a cycle in the
// acquisition-order graph is a potential deadlock even when every
// individual function is locally correct (the hazard class PRs 5–7
// grew: region locks vs compactMu vs the master's catalog lock, spread
// across functions and packages).
//
// Locks are abstracted to classes — "(hstore.Region).mu" names the mu
// field of every Region instance. Edges are collected per function by
// a forward held-set dataflow over the CFG, and calls propagate the
// callee's transitive may-acquire summary (computed bottom-up over the
// call graph), so nesting hidden behind two levels of helpers is still
// seen. Three deliberate precision choices:
//
//   - go-statement spawns carry no held state (a fresh goroutine holds
//     nothing) and contribute nothing to a caller's may-acquire set;
//   - TryLock/TryRLock acquisitions never create an incoming edge
//     (a non-blocking acquire cannot deadlock) but do hold the lock
//     for outgoing edges;
//   - self-edges (one class nested under itself) are not reported:
//     instance-level order within a class (e.g. locking regions in
//     slice order) cannot be validated by a class-level abstraction.
type lockOrderCheck struct{}

func (lockOrderCheck) Name() string { return "lockorder" }
func (lockOrderCheck) Doc() string {
	return "the cross-module mutex acquisition-order graph is acyclic (no deadlock cycles)"
}

// lockAcquire classifies mutex methods: blocking acquires, conditional
// acquires, and releases. Read locks are the same hazard as write
// locks (two readers can still deadlock against two writers), so
// RLock == Lock here.
var (
	lockAcquires    = map[string]bool{"Lock": true, "RLock": true}
	lockTryAcquires = map[string]bool{"TryLock": true, "TryRLock": true}
	lockReleases    = map[string]bool{"Unlock": true, "RUnlock": true}
)

// lockClassOp resolves a call to a sync.Mutex/RWMutex method into its
// lock class and operation. ok is false for non-mutex calls and for
// locks with no stable class identity (local mutex variables).
func lockClassOp(pkg *Package, call *ast.CallExpr) (class, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	name := fn.Name()
	if !lockAcquires[name] && !lockTryAcquires[name] && !lockReleases[name] {
		return "", "", false
	}
	class = lockClass(pkg, sel.X)
	if class == "" {
		return "", "", false
	}
	return class, name, true
}

// lockClass names the lock's class: "(pkg.Type).field" for a mutex
// field, "pkg.var" for a package-level mutex, "" for locks with no
// cross-function identity (locals).
func lockClass(pkg *Package, expr ast.Expr) string {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		// field access: identity is the container type + field name.
		if tv, ok := pkg.Info.Types[x.X]; ok {
			if named := namedOf(tv.Type); named != nil {
				return fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Name(), named.Obj().Name(), x.Sel.Name)
			}
		}
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
			// Receiver with an embedded mutex: r.Lock() — class is the
			// receiver's type.
			if named := namedOf(v.Type()); named != nil {
				return fmt.Sprintf("(%s.%s).embedded", named.Obj().Pkg().Name(), named.Obj().Name())
			}
		}
	}
	return ""
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if ok && n.Obj().Pkg() != nil {
		return n
	}
	return nil
}

// lockHeld is the dataflow state: the set of lock classes that may be
// held at a program point.
type lockHeld map[string]bool

func (h lockHeld) clone() lockHeld {
	out := make(lockHeld, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

var lockFlow = FlowFuncs[lockHeld]{
	Join: func(a, b lockHeld) lockHeld {
		out := a.clone()
		for k := range b {
			out[k] = true
		}
		return out
	},
	Equal: func(a, b lockHeld) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	},
	Clone: func(s lockHeld) lockHeld { return s.clone() },
}

// lockWalk interprets one shallow CFG node: acquires and releases
// mutate held in source order; onAcquire fires for blocking acquires
// (with the pre-acquire held set), onCall for static calls to module
// functions. Deferred releases are ignored (the lock stays held to
// function exit); go statements are skipped entirely (their bodies are
// separate scopes and their spawned callees run with an empty held
// set).
func lockWalk(pkg *Package, node ast.Node, held lockHeld, onAcquire func(class string, pos token.Pos), onCall func(fn *types.Func, pos token.Pos)) {
	deferred := false
	if d, ok := node.(*ast.DeferStmt); ok {
		deferred = true
		node = d.Call
	}
	if _, ok := node.(*ast.GoStmt); ok {
		return
	}
	skipLits(node, func(x ast.Node) bool {
		if _, ok := x.(*ast.GoStmt); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, op, ok := lockClassOp(pkg, call); ok {
			switch {
			case lockAcquires[op]:
				if onAcquire != nil {
					onAcquire(class, call.Pos())
				}
				held[class] = true
			case lockTryAcquires[op]:
				held[class] = true // conditional acquire: no blocking edge in
			case lockReleases[op] && !deferred:
				delete(held, class)
			}
			return true
		}
		if fn := calleeFunc(pkg, call); fn != nil && onCall != nil {
			onCall(fn, call.Pos())
		}
		return true
	})
}

// lockEdge is one observed ordering: `from` held while acquiring `to`.
type lockEdge struct {
	from, to string
	pos      token.Position
	via      string // "" for a direct acquire, callee name for a call edge
}

func (lockOrderCheck) Check(m *Module, report func(token.Position, string)) {
	g := m.Graph()

	// Bottom-up may-acquire summaries: which lock classes can a call to
	// fn end up acquiring on the caller's goroutine. Graph edges already
	// attribute literal bodies to their declaration and mark go spawns,
	// so this is a pure edge fold plus the declaration's local acquires.
	localAcq := make(map[*types.Func]lockHeld)
	for _, fs := range moduleScopes(m.Pkgs) {
		fn := fs.Fn()
		if fn == nil || fs.GoLit {
			continue
		}
		acq := localAcq[fn]
		if acq == nil {
			acq = make(lockHeld)
			localAcq[fn] = acq
		}
		for _, n := range collectCFGNodes(fs.Body) {
			lockWalk(fs.Pkg, n, make(lockHeld), func(class string, _ token.Pos) { acq[class] = true }, nil)
		}
	}
	eq := lockFlow.Equal
	mayAcquire := BottomUp(g, func(n *CGNode, get func(*types.Func) lockHeld) lockHeld {
		out := make(lockHeld)
		for k := range localAcq[n.Fn] {
			out[k] = true
		}
		for _, e := range n.Out {
			if e.Kind == KindGo {
				continue
			}
			for k := range get(e.Callee.Fn) {
				out[k] = true
			}
		}
		return out
	}, func(a, b lockHeld) bool {
		if a == nil {
			a = lockHeld{}
		}
		if b == nil {
			b = lockHeld{}
		}
		return eq(a, b)
	})

	// Per-scope edge pass: forward held-set flow, recording an edge for
	// every (held, acquired) pair — acquired directly or via a callee's
	// may-acquire summary.
	edges := make(map[[2]string]lockEdge)
	record := func(from, to string, pos token.Position, via string) {
		if from == to {
			return
		}
		key := [2]string{from, to}
		if _, ok := edges[key]; !ok {
			edges[key] = lockEdge{from, to, pos, via}
		}
	}
	for _, fs := range moduleScopes(m.Pkgs) {
		fs := fs
		cfg := BuildCFG(fs.Body)
		flow := lockFlow
		flow.Transfer = func(n ast.Node, s lockHeld) lockHeld {
			s = s.clone()
			lockWalk(fs.Pkg, n, s, nil, nil)
			return s
		}
		ForwardVisit(cfg, make(lockHeld), flow, func(n ast.Node, held lockHeld) {
			held = held.clone()
			lockWalk(fs.Pkg, n, held,
				func(class string, pos token.Pos) {
					for h := range held {
						record(h, class, fs.Pkg.Fset.Position(pos), "")
					}
				},
				func(fn *types.Func, pos token.Pos) {
					if len(held) == 0 {
						return
					}
					for to := range mayAcquire[fn.Origin()] {
						for h := range held {
							record(h, to, fs.Pkg.Fset.Position(pos), funcDisplay(fn))
						}
					}
				})
		})
	}

	// Cycle detection over the lock-class graph.
	adj := make(map[string][]string)
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	comp := lockSCCs(adj)
	var cyclic []lockEdge
	for _, e := range edges {
		if comp[e.from] != "" && comp[e.from] == comp[e.to] {
			cyclic = append(cyclic, e)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool {
		a, b := cyclic[i], cyclic[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.from+a.to < b.from+b.to
	})
	for _, e := range cyclic {
		members := componentMembers(comp, comp[e.from])
		what := fmt.Sprintf("acquires %s while holding %s", e.to, e.from)
		if e.via != "" {
			what = fmt.Sprintf("call to %s acquires %s while holding %s", e.via, e.to, e.from)
		}
		report(e.pos, fmt.Sprintf("lock order cycle: %s, but the reverse order also exists (cycle through %s) — pick one global order",
			what, strings.Join(members, " → ")))
	}
}

// collectCFGNodes flattens a body into the same shallow nodes a CFG
// would hold, for passes that need no flow sensitivity.
func collectCFGNodes(body *ast.BlockStmt) []ast.Node {
	cfg := BuildCFG(body)
	var out []ast.Node
	for _, b := range cfg.Blocks {
		out = append(out, b.Nodes...)
	}
	return out
}

// lockSCCs runs Tarjan over the string lock graph, returning a
// component id per node; nodes in trivial components (no cycle) map to
// "". Self-loops are excluded by construction (record skips them).
func lockSCCs(adj map[string][]string) map[string]string {
	nodes := make([]string, 0, len(adj))
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		add(from)
		for _, to := range tos {
			add(to)
		}
	}
	sort.Strings(nodes)
	for _, tos := range adj {
		sort.Strings(tos)
	}

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	comp := make(map[string]string)
	next := 0
	var connect func(n string)
	connect = func(n string) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, w := range adj[n] {
			if _, ok := index[w]; !ok {
				connect(w)
				if low[w] < low[n] {
					low[n] = low[w]
				}
			} else if onStack[w] && index[w] < low[n] {
				low[n] = index[w]
			}
		}
		if low[n] == index[n] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == n {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				id := scc[0]
				for _, w := range scc {
					comp[w] = id
				}
			}
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			connect(n)
		}
	}
	return comp
}

func componentMembers(comp map[string]string, id string) []string {
	var out []string
	for n, c := range comp {
		if c == id {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
