package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural half of the analysis core: a
// whole-module call graph over go/types function objects. Nodes are
// the module's declared functions and methods; edges are static calls,
// go/defer spawns, and — for interfaces declared inside the module
// (core.KV, matcher.Store, dstore.MasterConn, ...) — dispatch edges to
// every module type that implements the called interface method.
// Function literals are attributed to their enclosing declaration:
// a call made inside a closure is an edge from the function that owns
// the closure, marked KindGo when the literal is launched by a go
// statement. Calls through plain function values stay unresolved;
// checkers that need soundness there over-approximate locally.

// CallKind classifies an edge by how the callee runs relative to the
// caller: a plain call or a deferred call runs on the caller's
// goroutine, a go edge does not — lock-order analysis must not carry
// held locks across a go edge.
type CallKind int

const (
	KindCall CallKind = iota
	KindGo
	KindDefer
)

// CallEdge is one resolved call site.
type CallEdge struct {
	Caller, Callee *CGNode
	Kind           CallKind
	Pos            token.Pos
	// ViaInterface marks a dispatch edge added by method-set
	// resolution rather than a static callee.
	ViaInterface bool
}

// CGNode is one declared function or method of the module.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []*CallEdge
	In   []*CallEdge
	// IsHandler marks HTTP entry points: the function's own signature
	// (or a function literal it contains) takes both an
	// http.ResponseWriter and an *http.Request, or it is a ServeHTTP
	// method. These are the roots request-path checks traverse from.
	IsHandler bool
}

func (n *CGNode) String() string { return n.Fn.FullName() }

// CallGraph is the whole-module graph. Nodes is keyed by the declared
// (origin) *types.Func; Order lists nodes deterministically by source
// position.
type CallGraph struct {
	Nodes map[*types.Func]*CGNode
	Order []*CGNode
}

// Node returns the node for fn (resolving generic instances to their
// origin), or nil if fn is not declared in the module.
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn.Origin()]
}

func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CGNode)}
	// Pass 1: nodes for every declared function and method.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CGNode{Fn: fn, Decl: decl, Pkg: pkg}
				g.Nodes[fn] = n
				g.Order = append(g.Order, n)
			}
		}
	}
	sort.Slice(g.Order, func(i, j int) bool {
		a, b := g.Order[i], g.Order[j]
		pa := a.Pkg.Fset.Position(a.Decl.Pos())
		pb := b.Pkg.Fset.Position(b.Decl.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Line < pb.Line
	})

	impls := interfaceImplementers(pkgs)

	// Pass 2: edges.
	for _, n := range g.Order {
		n.IsHandler = isHandlerDecl(n)
		body := n.Decl.Body
		if body == nil {
			continue
		}
		addEdges(g, n, body, impls)
	}
	return g
}

// isHandlerDecl reports whether a declaration is an HTTP entry point:
// its signature (or a literal inside it) carries (http.ResponseWriter,
// *http.Request), or it is a ServeHTTP method.
func isHandlerDecl(n *CGNode) bool {
	if n.Fn.Name() == "ServeHTTP" {
		return true
	}
	if sig, ok := n.Fn.Type().(*types.Signature); ok && handlerSignature(sig) {
		return true
	}
	found := false
	ast.Inspect(n.Decl, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		if tv, ok := n.Pkg.Info.Types[lit]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok && handlerSignature(sig) {
				found = true
			}
		}
		return true
	})
	return found
}

func handlerSignature(sig *types.Signature) bool {
	var hasW, hasR bool
	for i := 0; i < sig.Params().Len(); i++ {
		switch sig.Params().At(i).Type().String() {
		case "net/http.ResponseWriter":
			hasW = true
		case "*net/http.Request":
			hasR = true
		}
	}
	return hasW && hasR
}

// addEdges walks one declaration body, attributing calls inside
// function literals to the declaration. kind tracking: a call directly
// under a go/defer statement — or any call inside a literal launched
// by a go statement — carries that kind.
func addEdges(g *CallGraph, n *CGNode, body ast.Node, impls map[*types.Interface][]types.Type) {
	var walk func(node ast.Node, kind CallKind)
	walk = func(node ast.Node, kind CallKind) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch st := x.(type) {
			case *ast.GoStmt:
				// The spawned call (and a spawned literal's whole body)
				// runs on another goroutine.
				walk(st.Call, KindGo)
				return false
			case *ast.DeferStmt:
				walkCall(g, n, st.Call, KindDefer, impls)
				for _, arg := range st.Call.Args {
					walk(arg, kind)
				}
				if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
					// A deferred literal's body runs at return on the
					// caller's goroutine: plain edges.
					walk(lit.Body, KindCall)
				}
				return false
			case *ast.CallExpr:
				walkCall(g, n, st, kind, impls)
				return true
			}
			return true
		})
	}
	walk(body, KindCall)
}

func walkCall(g *CallGraph, n *CGNode, call *ast.CallExpr, kind CallKind, impls map[*types.Interface][]types.Type) {
	if callee := g.Node(calleeFunc(n.Pkg, call)); callee != nil {
		addEdge(n, callee, kind, call.Pos(), false)
	}
	// Interface dispatch: resolve the called method against every
	// module type implementing the (module-declared) interface.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := n.Pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	recv := selection.Recv()
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for declared, users := range impls {
		if !types.Identical(declared, iface) {
			continue
		}
		for _, t := range users {
			obj, _, _ := types.LookupFieldOrMethod(t, true, nil, sel.Sel.Name)
			if m, ok := obj.(*types.Func); ok {
				if callee := g.Node(m); callee != nil {
					addEdge(n, callee, kind, call.Pos(), true)
				}
			}
		}
	}
}

func addEdge(from, to *CGNode, kind CallKind, pos token.Pos, viaIface bool) {
	for _, e := range from.Out {
		if e.Callee == to && e.Kind == kind && e.ViaInterface == viaIface {
			return
		}
	}
	e := &CallEdge{Caller: from, Callee: to, Kind: kind, Pos: pos, ViaInterface: viaIface}
	from.Out = append(from.Out, e)
	to.In = append(to.In, e)
}

// interfaceImplementers maps every non-empty interface declared in the
// module to the module types (or pointers to them) that implement it.
// Interfaces from outside the module (io.Writer, http.Handler, ...)
// are deliberately excluded: resolving io.Writer against every Write
// method in the tree would drown the graph in false reachability.
func interfaceImplementers(pkgs []*Package) map[*types.Interface][]types.Type {
	var ifaces []*types.Interface
	var named []types.Type
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if iface, ok := t.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, iface)
				}
				continue
			}
			named = append(named, t)
		}
	}
	out := make(map[*types.Interface][]types.Type, len(ifaces))
	for _, iface := range ifaces {
		for _, t := range named {
			if types.Implements(t, iface) {
				out[iface] = append(out[iface], t)
			} else if pt := types.NewPointer(t); types.Implements(pt, iface) {
				out[iface] = append(out[iface], pt)
			}
		}
	}
	return out
}

// HandlerRoots returns the graph's HTTP entry points in deterministic
// order.
func (g *CallGraph) HandlerRoots() []*CGNode {
	var roots []*CGNode
	for _, n := range g.Order {
		if n.IsHandler {
			roots = append(roots, n)
		}
	}
	return roots
}

// Reachable returns every function reachable from the roots over call,
// go, and defer edges (a goroutine spawned on a request path is still
// request-path code).
func (g *CallGraph) Reachable(roots []*CGNode) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var stack []*CGNode
	for _, r := range roots {
		if !seen[r.Fn] {
			seen[r.Fn] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if !seen[e.Callee.Fn] {
				seen[e.Callee.Fn] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// SCCs returns the graph's strongly connected components in bottom-up
// (callees before callers) order — the order per-function summaries
// must be computed in. Tarjan's algorithm emits components in exactly
// this order.
func (g *CallGraph) SCCs() [][]*CGNode {
	index := make(map[*CGNode]int)
	low := make(map[*CGNode]int)
	onStack := make(map[*CGNode]bool)
	var stack []*CGNode
	var out [][]*CGNode
	next := 0

	var strongconnect func(n *CGNode)
	strongconnect = func(n *CGNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range n.Out {
			w := e.Callee
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[n] {
					low[n] = low[w]
				}
			} else if onStack[w] && index[w] < low[n] {
				low[n] = index[w]
			}
		}
		if low[n] == index[n] {
			var scc []*CGNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == n {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, n := range g.Order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return out
}

// BottomUp computes a summary per function, callees first, iterating
// each strongly connected component (mutual recursion) to a fixpoint.
// get returns the zero summary for functions outside the module.
func BottomUp[S any](g *CallGraph, compute func(n *CGNode, get func(*types.Func) S) S, eq func(a, b S) bool) map[*types.Func]S {
	out := make(map[*types.Func]S)
	get := func(fn *types.Func) S {
		if fn != nil {
			fn = fn.Origin()
		}
		return out[fn]
	}
	for _, scc := range g.SCCs() {
		for {
			changed := false
			for _, n := range scc {
				s := compute(n, get)
				if !eq(s, out[n.Fn]) {
					out[n.Fn] = s
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return out
}

// funcDisplay renders a function for findings: "(*dstore.Client).Put"
// or "gateway.NewGateway".
func funcDisplay(fn *types.Func) string {
	if fn == nil {
		return "<unknown>"
	}
	name := fn.FullName()
	// FullName is fully package-path qualified; trim the module prefix
	// for readability.
	name = strings.ReplaceAll(name, "pstorm/internal/", "")
	return strings.ReplaceAll(name, "pstorm/", "")
}
