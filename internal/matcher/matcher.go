// Package matcher implements the PStorM profile matcher (Chapter 4):
// the domain-specific, multi-stage algorithm that, given the 1-task
// sample profile and static features of a submitted MapReduce job,
// selects the best-matching stored profile — independently for the map
// side and the reduce side, composing the two winners into the profile
// handed to the cost-based optimizer (§4.3, Fig 4.4).
//
// Stages per side:
//
//  1. Normalized Euclidean distance over the dynamic features (the
//     data-flow statistics of Table 4.1) against every stored profile,
//     keeping candidates within θ_Eucl. An empty result here is a
//     matching failure.
//  2. Conservative CFG matching (synchronized traversal, verdict 0/1).
//  3. Jaccard similarity ≥ θ_Jacc over the categorical static features
//     (Table 4.3).
//     If stages 2–3 empty the candidate set, the job was never run on
//     the cluster before: the alternative filter applies the Euclidean
//     distance over the profile cost factors (Table 4.2) to the stage-1
//     survivors instead.
//  4. Ties are broken by closest input data size (Fig 4.6's rationale:
//     the same job on different data sizes has different shuffle
//     behaviour).
package matcher

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"

	"pstorm/internal/hstore"
	"pstorm/internal/obs"
	"pstorm/internal/profile"
)

// Feature-type prefixes: the row-key prefixes of the Table 5.1 data
// model, extended with the map/reduce split PStorM's matcher needs.
const (
	FTDynMap  = "dynmap"
	FTDynRed  = "dynred"
	FTStatMap = "statmap"
	FTStatRed = "statred"
	FTCostMap = "costmap"
	FTCostRed = "costred"
)

// InputBytesColumn is the per-profile input size column stored with the
// dynamic features, used only for tie-breaking (never in distances).
const InputBytesColumn = "!INPUT_BYTES"

// CFGColumn is the canonical-CFG column stored with the static features.
const CFGColumn = "!CFG"

// CallSigColumn stores the §7.2.2 call-flow-graph signature (the CFG
// plus the CFGs of transitively called helpers).
const CallSigColumn = "!CALLSIG"

// ParamColumnPrefix prefixes job-parameter columns in the static rows
// (the §7.2.1 extension).
const ParamColumnPrefix = "!PARAM_"

// Entry is one candidate returned from a feature scan.
type Entry struct {
	JobID string
	Row   hstore.Row
}

// Store is the matcher's view of the profile store. The core package
// implements it over the hstore client with server-side filter pushdown.
type Store interface {
	// ScanFeatures scans all rows of the given feature type through the
	// (pushed-down) filter. The context bounds the scan: a canceled
	// caller stops the underlying region scans server-side.
	ScanFeatures(ctx context.Context, ftype string, f hstore.Filter) ([]Entry, error)
	// GetFeatures point-reads one profile's feature row.
	GetFeatures(ctx context.Context, ftype, jobID string) (hstore.Row, bool, error)
	// Bounds returns the min/max observed value per feature, aligned
	// with the features slice, for normalization (§4.2).
	Bounds(ctx context.Context, ftype string, features []string) (min, max []float64, err error)
	// LoadProfile fetches the full stored profile.
	LoadProfile(ctx context.Context, jobID string) (*profile.Profile, error)
}

// MultiGetStore is the optional batched-read upgrade of Store: a store
// that can fetch many feature rows in one round trip implements it, and
// the matcher prefers it over per-candidate GetFeatures calls wherever
// it reads a row per stage-1 survivor.
type MultiGetStore interface {
	Store
	// MultiGetFeatures point-reads one feature row per job ID, returning
	// only the rows that exist, keyed by job ID.
	MultiGetFeatures(ctx context.Context, ftype string, jobIDs []string) (map[string]hstore.Row, error)
}

// getFeatureRows fetches one feature row per candidate — in a single
// round trip when the store supports MultiGetStore, per-row otherwise.
// Missing rows are simply absent from the result.
func getFeatureRows(ctx context.Context, st Store, ftype string, cands []Entry) (map[string]hstore.Row, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	if mg, ok := st.(MultiGetStore); ok {
		ids := make([]string, len(cands))
		for i, c := range cands {
			ids[i] = c.JobID
		}
		return mg.MultiGetFeatures(ctx, ftype, ids)
	}
	rows := make(map[string]hstore.Row, len(cands))
	for _, c := range cands {
		row, ok, err := st.GetFeatures(ctx, ftype, c.JobID)
		if err != nil {
			return nil, err
		}
		if ok {
			rows[c.JobID] = row
		}
	}
	return rows, nil
}

// Matcher holds the thresholds of the multi-stage workflow. The zero
// value is NOT ready; use New for the paper's settings (θ_Jacc = 0.5,
// θ_Eucl = sqrt(#features)/2 — half the maximum possible distance of
// normalized vectors, Chapter 6).
type Matcher struct {
	// JaccardThreshold is θ_Jacc.
	JaccardThreshold float64
	// EuclideanFraction scales θ_Eucl = f * sqrt(#features). The paper
	// uses 0.5.
	EuclideanFraction float64

	// StaticFirst inverts the filter order: CFG and Jaccard filters run
	// before the dynamic-features filter. §4.3 argues this loses the
	// composite-profile opportunity for unseen jobs (and wrongly matches
	// the same program run with different user parameters); the
	// filter-order ablation measures exactly that.
	StaticFirst bool

	// IncludeCostInStage1 appends the profile cost factors to the
	// stage-1 Euclidean vector. §4.1.1 argues their high variance across
	// sample profiles of the same job makes them poor primary matching
	// features; the cost-factor ablation quantifies it.
	IncludeCostInStage1 bool

	// CostOnlyStage1 replaces the stage-1 dynamic features with the cost
	// factors entirely — the sharpest form of the §4.1.1 ablation.
	CostOnlyStage1 bool

	// UseCallFlowGraph switches the stage-2 structural comparison from
	// the function's own CFG to its call-flow-graph signature (§7.2.2):
	// two functions with identical bodies but different helpers stop
	// matching.
	UseCallFlowGraph bool

	// IncludeJobParams adds the submitted job's user parameters to the
	// stage-3 Jaccard vector (§7.2.1): the same program run with a
	// different window size or search pattern is no longer a perfect
	// static match.
	IncludeJobParams bool

	// Obs, when non-nil, receives match-outcome counters
	// (matcher_match_total{outcome=...} and per-side stage counters).
	Obs *obs.Registry
}

// New returns a matcher with the paper's thresholds.
func New() *Matcher {
	return &Matcher{JaccardThreshold: 0.5, EuclideanFraction: 0.5}
}

// SideKind selects the map or reduce side.
type SideKind int

// Side kinds.
const (
	MapSide SideKind = iota
	ReduceSide
)

func (s SideKind) String() string {
	if s == MapSide {
		return "map"
	}
	return "reduce"
}

// SideReport traces one side's trip through the matching workflow.
type SideReport struct {
	Side             SideKind
	Stage1Candidates int
	AfterCFG         int
	AfterJaccard     int
	UsedCostFallback bool
	Winner           string
	WinnerDistance   float64
	Failed           bool
	// Degraded reports that the static/cost feature rows could not be
	// fetched (store partially unavailable after the retry budget), so
	// the side fell back to stage-1-only matching: the winner is the
	// best dynamic-distance candidate, unrefined by CFG or Jaccard.
	Degraded bool

	// CandidateIDs lists the stage-1 survivors with their dynamic
	// distances, for diagnostics and the experiment harness.
	CandidateIDs map[string]float64
}

// Result is the matcher's verdict for a submitted job.
type Result struct {
	// Profile is the matched (possibly composite) profile, nil when no
	// match was found.
	Profile *profile.Profile
	// MapJobID / ReduceJobID identify the donor profiles.
	MapJobID    string
	ReduceJobID string
	// Composite reports whether the two sides came from different jobs.
	Composite bool
	// Degraded reports that at least one side matched in stage-1-only
	// fallback mode because later-stage feature rows were unreachable.
	Degraded bool

	MapReport    SideReport
	ReduceReport SideReport
}

// Matched reports whether a profile was found.
func (r *Result) Matched() bool { return r.Profile != nil }

// sideSpec bundles the per-side schema.
type sideSpec struct {
	kind        SideKind
	ftDyn       string
	ftStat      string
	ftCost      string
	dynFeatures []string
	costFeats   []string
}

var mapSpec = sideSpec{
	kind: MapSide, ftDyn: FTDynMap, ftStat: FTStatMap, ftCost: FTCostMap,
	dynFeatures: profile.MapDataFlowFeatures, costFeats: profile.MapCostFeatures,
}

var redSpec = sideSpec{
	kind: ReduceSide, ftDyn: FTDynRed, ftStat: FTStatRed, ftCost: FTCostRed,
	dynFeatures: profile.ReduceDataFlowFeatures, costFeats: profile.ReduceCostFeatures,
}

// Match runs the full workflow (Fig 4.4) for a submitted job described
// by its 1-task sample profile (which also carries the job's static
// features; see profile.AttachStatics). The returned Result's Profile
// is ready for the Starfish CBO. The context bounds every store fetch
// the match performs; both sides share it, so a canceled caller stops
// map- and reduce-side scans alike.
func (m *Matcher) Match(ctx context.Context, st Store, sample *profile.Profile) (*Result, error) {
	if sample == nil {
		return nil, fmt.Errorf("matcher: nil sample profile")
	}
	res := &Result{}
	// The two sides are independent trips through the workflow against
	// disjoint row families, so they run concurrently.
	var wg sync.WaitGroup
	var mapErr, redErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		res.MapReport, mapErr = m.matchSide(ctx, st, mapSpec, &sample.Map, sample.InputBytes, sample.Params)
	}()
	go func() {
		defer wg.Done()
		res.ReduceReport, redErr = m.matchSide(ctx, st, redSpec, &sample.Reduce, sample.InputBytes, sample.Params)
	}()
	wg.Wait()
	if mapErr != nil {
		return nil, mapErr
	}
	if redErr != nil {
		return nil, redErr
	}
	m.countSide(res.MapReport)
	m.countSide(res.ReduceReport)
	res.Degraded = res.MapReport.Degraded || res.ReduceReport.Degraded
	if res.MapReport.Failed || res.ReduceReport.Failed {
		m.Obs.Counter("matcher_match_total", "outcome", "none").Inc()
		return res, nil
	}
	res.MapJobID = res.MapReport.Winner
	res.ReduceJobID = res.ReduceReport.Winner
	res.Composite = res.MapJobID != res.ReduceJobID

	mp, err := st.LoadProfile(ctx, res.MapJobID)
	if err != nil {
		return nil, fmt.Errorf("matcher: loading map donor %s: %w", res.MapJobID, err)
	}
	rp := mp
	if res.Composite {
		rp, err = st.LoadProfile(ctx, res.ReduceJobID)
		if err != nil {
			return nil, fmt.Errorf("matcher: loading reduce donor %s: %w", res.ReduceJobID, err)
		}
	}
	res.Profile = profile.Compose(mp, rp)
	outcome := "whole"
	if res.Composite {
		outcome = "composite"
	}
	m.Obs.Counter("matcher_match_total", "outcome", outcome).Inc()
	return res, nil
}

// countSide records one side's trip through the workflow (no-op when
// Obs is nil).
func (m *Matcher) countSide(rep SideReport) {
	side := rep.Side.String()
	if rep.UsedCostFallback {
		m.Obs.Counter("matcher_cost_fallback_total", "side", side).Inc()
	}
	if rep.Failed {
		m.Obs.Counter("matcher_side_failed_total", "side", side).Inc()
	}
	if rep.Degraded {
		m.Obs.Counter("matcher_degraded_total", "side", side).Inc()
	}
}

// structuralWant returns the stage-2 comparison column and target: the
// plain CFG by default, the call-flow-graph signature under the §7.2.2
// extension.
func (m *Matcher) structuralWant(side *profile.Side) (col, want string) {
	if m.UseCallFlowGraph {
		return CallSigColumn, side.StaticCallSig
	}
	return CFGColumn, side.StaticCFG
}

// jaccardWant returns the stage-3 categorical vector, extended with the
// job parameters under the §7.2.1 extension.
func (m *Matcher) jaccardWant(side *profile.Side, params map[string]string) map[string]string {
	if !m.IncludeJobParams || len(params) == 0 {
		return side.StaticCategorical
	}
	want := make(map[string]string, len(side.StaticCategorical)+len(params))
	for k, v := range side.StaticCategorical {
		want[k] = v
	}
	for k, v := range params {
		want[ParamColumnPrefix+k] = v
	}
	return want
}

// matchSide runs the per-side workflow.
func (m *Matcher) matchSide(ctx context.Context, st Store, spec sideSpec, side *profile.Side, inputBytes int64, params map[string]string) (SideReport, error) {
	if m.StaticFirst {
		return m.matchSideStaticFirst(ctx, st, spec, side, inputBytes, params)
	}
	rep := SideReport{Side: spec.kind}

	// ----- Stage 1: Euclidean over dynamic features (pushed down). -----
	dynFeats := spec.dynFeatures
	if m.CostOnlyStage1 {
		dynFeats = spec.costFeats
	} else if m.IncludeCostInStage1 {
		dynFeats = append(append([]string(nil), dynFeats...), spec.costFeats...)
	}
	target := make([]float64, len(dynFeats))
	for i, f := range dynFeats {
		if v, ok := side.DataFlow[f]; ok {
			target[i] = v
		} else {
			target[i] = side.CostFactors[f]
		}
	}
	dynFilter, err := m.stage1Filter(ctx, st, spec, dynFeats, target)
	if err != nil {
		return rep, err
	}
	cands, err := m.stage1Scan(ctx, st, spec, dynFilter)
	if err != nil {
		return rep, err
	}
	rep.Stage1Candidates = len(cands)
	if len(cands) == 0 {
		rep.Failed = true
		return rep, nil
	}
	dynDist := make(map[string]float64, len(cands))
	candIn := make(map[string]int64, len(cands))
	rep.CandidateIDs = dynDist
	for _, c := range cands {
		dynDist[c.JobID] = dynFilter.Distance(c.Row)
		if raw, ok := c.Row.Columns[InputBytesColumn]; ok {
			if v, err := strconv.ParseInt(string(raw), 10, 64); err == nil {
				candIn[c.JobID] = v
			}
		}
	}

	// ----- Stage 2: conservative CFG match. -----
	// A fetch failure here means the static rows are unreachable after
	// the client's whole retry budget — a store outage, not a miss.
	// Rather than failing the match (and with it the whole tuning run),
	// degrade to stage-1-only: the dynamic-distance winner is still a
	// defensible profile, just unrefined by the code-identity stages.
	cfgCol, cfgWant := m.structuralWant(side)
	statRows, err := getFeatureRows(ctx, st, spec.ftStat, cands)
	if err != nil {
		rep.Degraded = true
		rep.Winner, rep.WinnerDistance = pickWinner(cands, dynDist, candIn, inputBytes)
		return rep, nil
	}
	var afterCFG []Entry
	for _, c := range cands {
		row, ok := statRows[c.JobID]
		if !ok {
			continue
		}
		if string(row.Columns[cfgCol]) == cfgWant && cfgWant != "" {
			afterCFG = append(afterCFG, c)
		}
	}
	rep.AfterCFG = len(afterCFG)

	// ----- Stage 3: Jaccard over categorical static features. -----
	// Candidates below θ_Jacc are dropped; among the rest, only the
	// best code match survives to the tie-break. (The input-size rule
	// exists to pick between runs of the SAME code on different data
	// sizes, Fig 4.6 — letting it override a better code match would
	// hand a submission to whichever unrelated job happens to share its
	// input, exactly the DD trap.)
	var afterJac []Entry
	jac := &hstore.JaccardFilter{Want: m.jaccardWant(side, params), Threshold: m.JaccardThreshold}
	bestScore := -1.0
	scores := make(map[string]float64, len(afterCFG))
	for _, c := range afterCFG {
		sc := jac.Score(statRows[c.JobID])
		scores[c.JobID] = sc
		if sc >= m.JaccardThreshold && sc > bestScore {
			bestScore = sc
		}
	}
	for _, c := range afterCFG {
		if sc := scores[c.JobID]; sc >= m.JaccardThreshold && sc >= bestScore-1e-9 {
			afterJac = append(afterJac, c)
		}
	}
	rep.AfterJaccard = len(afterJac)

	survivors := afterJac
	if len(survivors) == 0 {
		// ----- Alternative filter: cost factors over stage-1 set. -----
		// The submitted job was never executed on this cluster; the
		// cost factors, despite their variance, carry the information
		// the What-If engine most depends on (§4.3).
		rep.UsedCostFallback = true
		costTarget := make([]float64, len(spec.costFeats))
		for i, f := range spec.costFeats {
			costTarget[i] = side.CostFactors[f]
		}
		cmin, cmax, err := st.Bounds(ctx, spec.ftCost, spec.costFeats)
		if err != nil {
			rep.Degraded = true
			rep.Winner, rep.WinnerDistance = pickWinner(cands, dynDist, candIn, inputBytes)
			return rep, nil
		}
		mergeBounds(cmin, cmax, costTarget)
		costThr := m.EuclideanFraction * math.Sqrt(float64(len(spec.costFeats)))
		costFilter := &hstore.EuclideanFilter{
			Features: spec.costFeats, Target: costTarget,
			Min: cmin, Max: cmax, Threshold: costThr,
		}
		costRows, err := getFeatureRows(ctx, st, spec.ftCost, cands)
		if err != nil {
			rep.Degraded = true
			rep.Winner, rep.WinnerDistance = pickWinner(cands, dynDist, candIn, inputBytes)
			return rep, nil
		}
		for _, c := range cands {
			if row, ok := costRows[c.JobID]; ok && costFilter.Matches(row) {
				survivors = append(survivors, c)
			}
		}
		if len(survivors) == 0 {
			rep.Failed = true
			return rep, nil
		}
	}

	// ----- Tie-break: closest input data size. -----
	rep.Winner, rep.WinnerDistance = pickWinner(survivors, dynDist, candIn, inputBytes)
	return rep, nil
}

// pickWinner applies the Fig 4.6 tie-break — closest input data size,
// then smallest dynamic distance — over the surviving candidates.
func pickWinner(survivors []Entry, dynDist map[string]float64, candIn map[string]int64, inputBytes int64) (string, float64) {
	best := survivors[0]
	bestGap := int64(math.MaxInt64)
	for _, c := range survivors {
		gap := absInt64(candIn[c.JobID] - inputBytes)
		if gap < bestGap || (gap == bestGap && dynDist[c.JobID] < dynDist[best.JobID]) {
			best, bestGap = c, gap
		}
	}
	return best.JobID, dynDist[best.JobID]
}

// stage1Filter builds the normalized Euclidean filter for the stage-1
// feature list, fetching bounds from the right feature-type rows.
func (m *Matcher) stage1Filter(ctx context.Context, st Store, spec sideSpec, feats []string, target []float64) (*hstore.EuclideanFilter, error) {
	var minB, maxB []float64
	var err error
	if m.CostOnlyStage1 {
		minB, maxB, err = st.Bounds(ctx, spec.ftCost, feats)
		if err != nil {
			return nil, err
		}
	} else {
		nDyn := len(spec.dynFeatures)
		minB, maxB, err = st.Bounds(ctx, spec.ftDyn, feats[:nDyn])
		if err != nil {
			return nil, err
		}
		if len(feats) > nDyn {
			cmin, cmax, err := st.Bounds(ctx, spec.ftCost, feats[nDyn:])
			if err != nil {
				return nil, err
			}
			minB = append(minB, cmin...)
			maxB = append(maxB, cmax...)
		}
	}
	mergeBounds(minB, maxB, target)
	thr := m.EuclideanFraction * math.Sqrt(float64(len(feats)))
	return &hstore.EuclideanFilter{
		Features: feats, Target: target,
		Min: minB, Max: maxB, Threshold: thr,
	}, nil
}

// stage1Scan evaluates the stage-1 filter. In the normal configuration
// the filter is pushed down over the dynamic-feature rows; when cost
// factors are mixed in (the ablation), the features span two row
// families, so candidates are joined client-side first.
func (m *Matcher) stage1Scan(ctx context.Context, st Store, spec sideSpec, f *hstore.EuclideanFilter) ([]Entry, error) {
	if m.CostOnlyStage1 {
		// The cost vector lives in one row family, so the filter pushes
		// down over the cost rows; the dynamic row (for the input-size
		// tie-break column) is joined afterwards.
		hits, err := st.ScanFeatures(ctx, spec.ftCost, f)
		if err != nil {
			return nil, err
		}
		dynRows, err := getFeatureRows(ctx, st, spec.ftDyn, hits)
		if err != nil {
			return nil, err
		}
		var out []Entry
		for _, e := range hits {
			dynRow, ok := dynRows[e.JobID]
			if !ok {
				continue
			}
			joined := e.Row.Clone()
			for c, v := range dynRow.Columns {
				joined.Columns[c] = v
			}
			out = append(out, Entry{JobID: e.JobID, Row: joined})
		}
		return out, nil
	}
	if !m.IncludeCostInStage1 {
		return st.ScanFeatures(ctx, spec.ftDyn, f)
	}
	all, err := st.ScanFeatures(ctx, spec.ftDyn, nil)
	if err != nil {
		return nil, err
	}
	costRows, err := getFeatureRows(ctx, st, spec.ftCost, all)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, e := range all {
		costRow, ok := costRows[e.JobID]
		if !ok {
			continue
		}
		joined := e.Row.Clone()
		for c, v := range costRow.Columns {
			joined.Columns[c] = v
		}
		if f.Matches(joined) {
			out = append(out, Entry{JobID: e.JobID, Row: joined})
		}
	}
	return out, nil
}

// matchSideStaticFirst is the inverted filter order of the ablation:
// CFG and Jaccard first, the dynamic-features filter last.
func (m *Matcher) matchSideStaticFirst(ctx context.Context, st Store, spec sideSpec, side *profile.Side, inputBytes int64, params map[string]string) (SideReport, error) {
	rep := SideReport{Side: spec.kind}

	// Static stages over the whole store, CFG pushed down.
	cfgCol, cfgWant := m.structuralWant(side)
	cfgF := &hstore.ColumnEqualsFilter{Column: cfgCol, Value: cfgWant}
	statCands, err := st.ScanFeatures(ctx, spec.ftStat, cfgF)
	if err != nil {
		return rep, err
	}
	rep.AfterCFG = len(statCands)
	jac := &hstore.JaccardFilter{Want: m.jaccardWant(side, params), Threshold: m.JaccardThreshold}
	var afterJac []Entry
	for _, c := range statCands {
		if jac.Matches(c.Row) {
			afterJac = append(afterJac, c)
		}
	}
	rep.AfterJaccard = len(afterJac)
	if len(afterJac) == 0 {
		rep.Failed = true
		return rep, nil
	}

	// Dynamic filter over the static survivors. If the dynamic rows are
	// unreachable (store outage, not a miss), degrade to the static
	// verdict alone instead of failing the match.
	target := make([]float64, len(spec.dynFeatures))
	for i, f := range spec.dynFeatures {
		target[i] = side.DataFlow[f]
	}
	dynFilter, err := m.stage1Filter(ctx, st, spec, spec.dynFeatures, target)
	if err != nil {
		rep.Degraded = true
		rep.Winner, rep.WinnerDistance = pickWinner(afterJac, nil, nil, inputBytes)
		return rep, nil
	}
	dynDist := make(map[string]float64)
	candIn := make(map[string]int64)
	rep.CandidateIDs = dynDist
	dynRows, err := getFeatureRows(ctx, st, spec.ftDyn, afterJac)
	if err != nil {
		rep.Degraded = true
		rep.Winner, rep.WinnerDistance = pickWinner(afterJac, nil, nil, inputBytes)
		return rep, nil
	}
	var survivors []Entry
	for _, c := range afterJac {
		row, ok := dynRows[c.JobID]
		if !ok {
			continue
		}
		if raw, ok := row.Columns[InputBytesColumn]; ok {
			if v, perr := strconv.ParseInt(string(raw), 10, 64); perr == nil {
				candIn[c.JobID] = v
			}
		}
		if d := dynFilter.Distance(row); d <= dynFilter.Threshold {
			dynDist[c.JobID] = d
			survivors = append(survivors, Entry{JobID: c.JobID, Row: row})
		}
	}
	rep.Stage1Candidates = len(survivors)
	if len(survivors) == 0 {
		rep.Failed = true
		return rep, nil
	}
	best := survivors[0]
	bestGap := int64(math.MaxInt64)
	for _, c := range survivors {
		gap := absInt64(candIn[c.JobID] - inputBytes)
		if gap < bestGap || (gap == bestGap && dynDist[c.JobID] < dynDist[best.JobID]) {
			best, bestGap = c, gap
		}
	}
	rep.Winner = best.JobID
	rep.WinnerDistance = dynDist[best.JobID]
	return rep, nil
}

// mergeBounds prepares the normalization bounds for a filter: it widens
// the store's observed min/max with the probe's own values (the sample
// is itself an observation), then floors each feature's span at a
// fraction of its magnitude. Without the floor, a nearly-degenerate
// range
// would amplify sub-percent measurement noise into full-scale
// normalized distances; and a feature with a sub-50% spread across the
// whole store carries no real discriminative signal anyway.
func mergeBounds(minB, maxB, target []float64) {
	const relFloor = 0.5
	for i, v := range target {
		if v < minB[i] {
			minB[i] = v
		}
		if v > maxB[i] {
			maxB[i] = v
		}
		scale := math.Max(math.Abs(minB[i]), math.Abs(maxB[i]))
		if span := maxB[i] - minB[i]; span < relFloor*scale {
			pad := (relFloor*scale - span) / 2
			minB[i] -= pad
			maxB[i] += pad
		}
	}
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
