package matcher_test

import (
	"context"
	"testing"

	"pstorm/internal/matcher"
	"pstorm/internal/profile"
)

func TestStaticFirstMatchesSeenJob(t *testing.T) {
	st := newStore(t)
	self := fab("self", "jobA", 1000, 1.0, 10, "B L(B)", "MapA")
	decoy := fab("decoy", "jobB", 1000, 1.0, 10, "B", "MapB")
	putProfile(t, st, self)
	putProfile(t, st, decoy)

	m := matcher.New()
	m.StaticFirst = true
	res, err := m.Match(context.Background(), st, sampleLike(self, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() || res.MapJobID != "self" {
		t.Fatalf("static-first failed to match a previously seen job: %+v", res.MapReport)
	}
	if res.MapReport.AfterCFG < 1 || res.MapReport.AfterJaccard < 1 {
		t.Errorf("static-first stages not recorded: %+v", res.MapReport)
	}
}

func TestStaticFirstAppliesDynamicFilterSecond(t *testing.T) {
	st := newStore(t)
	// Identical code, but wildly different dynamics (the window-size
	// trap): static-first still lets the dynamic stage veto it.
	sameCode := fab("samecode", "jobA", 1000, 50.0, 10, "B L(B)", "MapA")
	putProfile(t, st, sameCode)

	m := matcher.New()
	m.StaticFirst = true
	sub := fab("probe", "jobA", 1000, 1.0, 10, "B L(B)", "MapA")
	res, err := m.Match(context.Background(), st, sampleLike(sub, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched() {
		t.Error("static-first should still fail candidates outside the dynamic threshold")
	}
	if res.MapReport.AfterJaccard != 1 || res.MapReport.Stage1Candidates != 0 {
		t.Errorf("expected Jaccard pass then dynamic veto: %+v", res.MapReport)
	}
}

func TestStaticFirstTieBreakByInputSize(t *testing.T) {
	st := newStore(t)
	near := fab("near", "jobA", 1_000, 1.0, 10, "B L(B)", "MapA")
	farSize := fab("farsize", "jobA", 9_000_000, 1.0, 10, "B L(B)", "MapA")
	putProfile(t, st, near)
	putProfile(t, st, farSize)
	m := matcher.New()
	m.StaticFirst = true
	res, err := m.Match(context.Background(), st, sampleLike(near, 1_500))
	if err != nil {
		t.Fatal(err)
	}
	if res.MapJobID != "near" {
		t.Errorf("static-first tie-break chose %s, want near", res.MapJobID)
	}
}

func TestIncludeCostInStage1StillMatchesTwin(t *testing.T) {
	st := newStore(t)
	self := fab("self", "jobA", 1000, 1.0, 10, "B L(B)", "MapA")
	costDecoy := fab("decoy", "jobB", 1000, 1.0, 500, "B L(B)", "MapA")
	putProfile(t, st, self)
	putProfile(t, st, costDecoy)

	m := matcher.New()
	m.IncludeCostInStage1 = true
	res, err := m.Match(context.Background(), st, sampleLike(self, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() || res.MapJobID != "self" {
		t.Fatalf("mixed stage-1 lost the twin: %+v", res.MapReport)
	}
	// The decoy's cost vector is 50x off; the mixed filter must have
	// seen it (joined rows) and either kept or cut it, but never crash.
	if res.MapReport.Stage1Candidates < 1 {
		t.Errorf("stage 1 candidates = %d", res.MapReport.Stage1Candidates)
	}
}

func TestCostFallbackExhausted(t *testing.T) {
	st := newStore(t)
	// Candidate passes the dynamic filter but has absurd cost factors
	// and mismatched statics: both static stages and the fallback fail.
	weird := fab("weird", "jobB", 1000, 1.0, 100000, "B BR(B|)", "OtherMapper")
	normal := fab("anchor", "jobC", 1000, 1.0, 10, "B L(B L(B))", "ThirdMapper")
	putProfile(t, st, weird)
	putProfile(t, st, normal)

	sub := fab("sub", "jobNew", 1000, 1.0, 10, "B L(B)", "NewMapper")
	res, err := matcher.New().Match(context.Background(), st, sampleLike(sub, 1000))
	if err != nil {
		t.Fatal(err)
	}
	// The anchor (similar costs) should be found via fallback; the
	// weird one (10000x costs) must not win.
	if res.Matched() && res.MapJobID == "weird" {
		t.Error("fallback returned the candidate with absurd cost factors")
	}
	if res.Matched() && !res.MapReport.UsedCostFallback {
		t.Error("expected the fallback path")
	}
}

func TestMatchReportsCandidateDistances(t *testing.T) {
	st := newStore(t)
	self := fab("self", "jobA", 1000, 1.0, 10, "B L(B)", "MapA")
	putProfile(t, st, self)
	res, err := matcher.New().Match(context.Background(), st, sampleLike(self, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := res.MapReport.CandidateIDs["self"]; !ok || d < 0 {
		t.Errorf("candidate distances not reported: %+v", res.MapReport.CandidateIDs)
	}
	if res.MapReport.WinnerDistance != res.MapReport.CandidateIDs["self"] {
		t.Error("winner distance inconsistent with candidate map")
	}
}

func TestComposeUsesMapDonorInput(t *testing.T) {
	mp := fab("m", "jm", 777, 1, 10, "B", "A")
	rp := fab("r", "jr", 999, 1, 10, "B", "B")
	c := profile.Compose(mp, rp)
	if c.InputBytes != 777 {
		t.Errorf("composite input = %d, want the map donor's 777", c.InputBytes)
	}
}
