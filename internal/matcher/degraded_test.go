package matcher_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"pstorm/internal/hstore"
	"pstorm/internal/matcher"
)

var errOutage = errors.New("store unavailable: retry budget exhausted")

// outageStore fails every read whose feature type starts with one of
// the down prefixes — the shape of a partial store outage where some
// regions' retry budgets exhaust while others answer fine. Embedding
// the plain Store interface also strips the MultiGetStore upgrade, so
// the matcher takes the per-row path through these wrappers.
type outageStore struct {
	matcher.Store
	down []string
}

func (o *outageStore) offline(ftype string) bool {
	for _, p := range o.down {
		if strings.HasPrefix(ftype, p) {
			return true
		}
	}
	return false
}

func (o *outageStore) ScanFeatures(ctx context.Context, ftype string, f hstore.Filter) ([]matcher.Entry, error) {
	if o.offline(ftype) {
		return nil, errOutage
	}
	return o.Store.ScanFeatures(ctx, ftype, f)
}

func (o *outageStore) GetFeatures(ctx context.Context, ftype, jobID string) (hstore.Row, bool, error) {
	if o.offline(ftype) {
		return hstore.Row{}, false, errOutage
	}
	return o.Store.GetFeatures(ctx, ftype, jobID)
}

func (o *outageStore) Bounds(ctx context.Context, ftype string, features []string) ([]float64, []float64, error) {
	if o.offline(ftype) {
		return nil, nil, errOutage
	}
	return o.Store.Bounds(ctx, ftype, features)
}

// TestMatchDegradesOnStatOutage: when the static feature rows are
// unreachable, Match must not error — it falls back to stage-1-only
// matching, still picks the dynamically closest donor, and tags the
// result Degraded.
func TestMatchDegradesOnStatOutage(t *testing.T) {
	st := newStore(t)
	for i := 0; i < 3; i++ {
		putProfile(t, st, fab(fmt.Sprintf("stored-%d", i), "job", 1<<30, float64(i+1), 10, "B L(B)", "M"))
	}
	sample := sampleLike(fab("sample", "job", 1<<30, 2, 10, "B L(B)", "M"), 1<<30)

	res, err := matcher.New().Match(context.Background(), &outageStore{Store: st, down: []string{"stat"}}, sample)
	if err != nil {
		t.Fatalf("Match must degrade on a stat-row outage, not error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Result.Degraded = false after stage-2 rows were unreachable")
	}
	if !res.MapReport.Degraded || !res.ReduceReport.Degraded {
		t.Fatalf("side reports not degraded: map=%v reduce=%v", res.MapReport.Degraded, res.ReduceReport.Degraded)
	}
	if !res.Matched() {
		t.Fatal("degraded match returned no profile")
	}
	// stored-1 (dyn scale 2) is the exact dynamic twin of the sample;
	// the stage-1-only tie-break must land on it.
	if res.MapJobID != "stored-1" || res.ReduceJobID != "stored-1" {
		t.Fatalf("degraded winner = %s/%s, want stored-1 on both sides", res.MapJobID, res.ReduceJobID)
	}
}

// TestMatchDegradesOnCostOutage: outage confined to the cost-factor
// rows only bites when the cost fallback is needed (no CFG survivor) —
// and then it degrades too instead of erroring.
func TestMatchDegradesOnCostOutage(t *testing.T) {
	st := newStore(t)
	// Stored profiles share dynamics but differ in CFG, so stage 2 kills
	// every candidate and the matcher reaches for the cost fallback.
	putProfile(t, st, fab("stored-0", "job", 1<<30, 2, 10, "OTHER CFG", "OtherMapper"))
	sample := sampleLike(fab("sample", "job", 1<<30, 2, 10, "B L(B)", "M"), 1<<30)

	res, err := matcher.New().Match(context.Background(), &outageStore{Store: st, down: []string{"cost"}}, sample)
	if err != nil {
		t.Fatalf("Match must degrade on a cost-row outage, not error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Result.Degraded = false after cost fallback rows were unreachable")
	}
	if !res.Matched() {
		t.Fatal("degraded match returned no profile")
	}
}

// TestMatchStillFailsOnStage1Outage: losing the dynamic rows leaves
// nothing to fall back on; that outage stays a hard error.
func TestMatchStillFailsOnStage1Outage(t *testing.T) {
	st := newStore(t)
	putProfile(t, st, fab("stored-0", "job", 1<<30, 2, 10, "B", "M"))
	sample := sampleLike(fab("sample", "job", 1<<30, 2, 10, "B", "M"), 1<<30)

	if _, err := matcher.New().Match(context.Background(), &outageStore{Store: st, down: []string{"dyn", "!bounds"}}, sample); err == nil {
		t.Fatal("Match succeeded with stage-1 rows unreachable")
	}
}
