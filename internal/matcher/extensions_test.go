package matcher_test

import (
	"context"
	"testing"

	"pstorm/internal/matcher"
	"pstorm/internal/profile"
)

// The §7.2 future-work extensions: call-flow-graph matching and job
// parameters as static features.

// withCallSig sets the call signatures on both sides.
func withCallSig(p *profile.Profile, mapSig, redSig string) *profile.Profile {
	p.Map.StaticCallSig = mapSig
	p.Reduce.StaticCallSig = redSig
	return p
}

func TestCallFlowGraphDistinguishesHelpers(t *testing.T) {
	st := newStore(t)
	// Two stored jobs: identical root CFGs and statics, but their map
	// functions call structurally different helpers.
	loopy := withCallSig(fab("loopy", "jobL", 1000, 1.0, 10, "B L(B)", "MapA"),
		"B L(B) {B L(B) B}", "B")
	flat := withCallSig(fab("flat", "jobF", 1000, 1.0, 10, "B L(B)", "MapA"),
		"B L(B) {B}", "B")
	putProfile(t, st, loopy)
	putProfile(t, st, flat)

	sub := withCallSig(fab("sub", "jobNew", 1000, 1.0, 10, "B L(B)", "MapA"),
		"B L(B) {B L(B) B}", "B")

	// Plain CFG matching cannot separate them: both pass stage 2 and
	// share maximal Jaccard, so the tie-break decides arbitrarily.
	plain := matcher.New()
	resPlain, err := plain.Match(context.Background(), st, sampleLike(sub, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.MapReport.AfterCFG != 2 {
		t.Fatalf("plain CFG stage kept %d, want both", resPlain.MapReport.AfterCFG)
	}

	// Call-flow-graph matching keeps only the helper-compatible donor.
	ext := matcher.New()
	ext.UseCallFlowGraph = true
	resExt, err := ext.Match(context.Background(), st, sampleLike(sub, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if resExt.MapReport.AfterCFG != 1 {
		t.Errorf("call-flow stage kept %d candidates, want 1", resExt.MapReport.AfterCFG)
	}
	if resExt.MapJobID != "loopy" {
		t.Errorf("call-flow matching chose %s, want loopy", resExt.MapJobID)
	}
}

func TestJobParamsPreferSameParameterProfile(t *testing.T) {
	st := newStore(t)
	// The same program stored at two window sizes; the probe ran with
	// window 8. Without the extension both stored profiles are perfect
	// static matches; with it, the same-parameter profile wins
	// decisively.
	w2 := fab("w2", "cooc", 1000, 1.0, 10, "B L(B)", "MapA")
	w2.Params = map[string]string{"window": "2"}
	w8 := fab("w8", "cooc", 1000, 1.02, 10.2, "B L(B)", "MapA")
	w8.Params = map[string]string{"window": "8"}
	putProfile(t, st, w2)
	putProfile(t, st, w8)

	sub := fab("sub", "cooc", 1000, 1.01, 10.1, "B L(B)", "MapA")
	sub.Params = map[string]string{"window": "8"}

	ext := matcher.New()
	ext.IncludeJobParams = true
	res, err := ext.Match(context.Background(), st, sampleLike(sub, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.MapJobID != "w8" {
		t.Errorf("param-aware matching chose %s, want the window-8 profile", res.MapJobID)
	}
	// Stage 3 must have narrowed to the exact-parameter profile.
	if res.MapReport.AfterJaccard != 1 {
		t.Errorf("after Jaccard %d candidates, want 1", res.MapReport.AfterJaccard)
	}
}

func TestJobParamsStillMatchWhenOnlyOtherParamStored(t *testing.T) {
	// With only the window-2 profile stored, a window-8 probe should
	// still match it (a related profile beats none) — the extension
	// refines preference, it does not hard-veto.
	st := newStore(t)
	w2 := fab("w2", "cooc", 1000, 1.0, 10, "B L(B)", "MapA")
	w2.Params = map[string]string{"window": "2"}
	putProfile(t, st, w2)

	sub := fab("sub", "cooc", 1000, 1.01, 10.1, "B L(B)", "MapA")
	sub.Params = map[string]string{"window": "8"}

	ext := matcher.New()
	ext.IncludeJobParams = true
	res, err := ext.Match(context.Background(), st, sampleLike(sub, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() || res.MapJobID != "w2" {
		t.Errorf("param-aware matching with no exact-param twin: %+v", res.MapReport)
	}
}

func TestExtensionsSurviveStoreRoundTrip(t *testing.T) {
	// Call signatures and params written by PutProfile come back through
	// the static feature rows.
	st := newStore(t)
	p := withCallSig(fab("x", "jobX", 1000, 1.0, 10, "B", "MapX"), "B {B L(B)}", "B")
	p.Params = map[string]string{"pattern": "zap"}
	putProfile(t, st, p)
	row, ok, err := st.GetFeatures(context.Background(), matcher.FTStatMap, "x")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if string(row.Columns[matcher.CallSigColumn]) != "B {B L(B)}" {
		t.Errorf("call signature column = %q", row.Columns[matcher.CallSigColumn])
	}
	if string(row.Columns[matcher.ParamColumnPrefix+"pattern"]) != "zap" {
		t.Errorf("param column = %q", row.Columns[matcher.ParamColumnPrefix+"pattern"])
	}
}
