package matcher_test

import (
	"context"
	"testing"

	"pstorm/internal/core"
	"pstorm/internal/hstore"
	"pstorm/internal/matcher"
	"pstorm/internal/profile"
)

// The matcher is tested against the real core.Store implementation over
// an in-process hstore; fabricated profiles give precise control over
// every stage of the workflow.

func newStore(t *testing.T) matcher.Store {
	t.Helper()
	st, err := core.NewStore(context.Background(), hstore.Connect(hstore.NewServer()))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func putProfile(t *testing.T, st matcher.Store, p *profile.Profile) {
	t.Helper()
	if err := st.(*core.Store).PutProfile(context.Background(), p); err != nil {
		t.Fatal(err)
	}
}

// fab builds a fabricated profile. dyn scales the dynamic features;
// cfgStr/catSuffix control the static features; cost scales cost
// factors.
func fab(jobID, jobName string, inputBytes int64, dyn, cost float64, cfgStr, mapper string) *profile.Profile {
	p := &profile.Profile{
		JobID: jobID, JobName: jobName, DatasetName: "ds",
		InputBytes: inputBytes, NumMapTasks: 4, NumReduceTasks: 1,
		Map: profile.NewSide(), Reduce: profile.NewSide(), Complete: true,
	}
	for i, f := range profile.MapDataFlowFeatures {
		p.Map.DataFlow[f] = dyn * float64(i+1)
	}
	for i, f := range profile.ReduceDataFlowFeatures {
		p.Reduce.DataFlow[f] = dyn * float64(i+1) / 2
	}
	for i, f := range profile.MapCostFeatures {
		p.Map.CostFactors[f] = cost * float64(i+1)
	}
	for i, f := range profile.ReduceCostFeatures {
		p.Reduce.CostFactors[f] = cost * float64(i+1)
	}
	p.Map.StaticCategorical = map[string]string{
		"IN_FORMATTER": "TextInputFormat", "MAPPER": mapper,
		"MAP_IN_KEY": "LongWritable", "MAP_IN_VAL": "Text",
		"MAP_OUT_KEY": "Text", "MAP_OUT_VAL": "IntWritable", "COMBINER": "C",
	}
	p.Map.StaticCFG = cfgStr
	p.Reduce.StaticCategorical = map[string]string{
		"RED_IN_KEY": "Text", "RED_IN_VAL": "IntWritable", "REDUCER": mapper + "R",
		"RED_OUT_KEY": "Text", "RED_OUT_VAL": "IntWritable", "OUT_FORMATTER": "TextOutputFormat",
	}
	p.Reduce.StaticCFG = cfgStr
	return p
}

// sampleLike derives a sample profile resembling stored profile p.
func sampleLike(p *profile.Profile, inputBytes int64) *profile.Profile {
	s := p.Clone()
	s.Complete = false
	s.SampledMapTasks = 1
	s.InputBytes = inputBytes
	return s
}

func TestMatchExactTwin(t *testing.T) {
	st := newStore(t)
	self := fab("self", "jobA", 1000, 1.0, 10, "B L(B)", "MapA")
	other := fab("other", "jobB", 1000, 5.0, 50, "B", "MapB")
	putProfile(t, st, self)
	putProfile(t, st, other)

	res, err := matcher.New().Match(context.Background(), st, sampleLike(self, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() || res.MapJobID != "self" || res.ReduceJobID != "self" {
		t.Fatalf("match = %+v, want self on both sides", res)
	}
	if res.Composite {
		t.Error("same donor should not be composite")
	}
	if res.MapReport.UsedCostFallback || res.ReduceReport.UsedCostFallback {
		t.Error("exact twin should match without the cost fallback")
	}
}

func TestMatchFailsOnEmptyStore(t *testing.T) {
	st := newStore(t)
	res, err := matcher.New().Match(context.Background(), st, sampleLike(fab("x", "jobA", 1000, 1, 10, "B", "M"), 1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched() {
		t.Error("empty store produced a match")
	}
	if !res.MapReport.Failed || res.MapReport.Stage1Candidates != 0 {
		t.Errorf("map report = %+v", res.MapReport)
	}
}

func TestMatchStage1FiltersDistantDynamics(t *testing.T) {
	st := newStore(t)
	// Two stored profiles with wildly different dynamics; the sample
	// matches one of them.
	near := fab("near", "jobA", 1000, 1.0, 10, "B L(B)", "MapA")
	far := fab("far", "jobB", 1000, 100.0, 10, "B L(B)", "MapA") // same statics!
	putProfile(t, st, near)
	putProfile(t, st, far)
	res, err := matcher.New().Match(context.Background(), st, sampleLike(near, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.MapJobID != "near" {
		t.Errorf("matched %s, want near (far should fail the dynamic filter)", res.MapJobID)
	}
	if res.MapReport.Stage1Candidates != 1 {
		t.Errorf("stage 1 kept %d candidates, want 1", res.MapReport.Stage1Candidates)
	}
}

func TestMatchCostFallbackForUnseenJob(t *testing.T) {
	st := newStore(t)
	// The stored job shares dynamics and costs but has a different CFG
	// and mapper: an unseen-job scenario where stages 2-3 empty the set
	// and the cost fallback must recover the donor.
	donor := fab("donor", "jobB", 1000, 1.0, 10, "B L(B L(B))", "OtherMapper")
	putProfile(t, st, donor)

	sub := fab("sub", "jobNew", 1000, 1.05, 10.5, "B L(B)", "NewMapper")
	res, err := matcher.New().Match(context.Background(), st, sampleLike(sub, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() || res.MapJobID != "donor" {
		t.Fatalf("unseen job did not fall back to cost matching: %+v", res.MapReport)
	}
	if !res.MapReport.UsedCostFallback {
		t.Error("fallback flag not set")
	}
}

func TestMatchCompositeProfile(t *testing.T) {
	st := newStore(t)
	// mapDonor matches the sample's map side statically; redDonor
	// matches the reduce side; neither matches both.
	mapDonor := fab("mapDonor", "jobM", 1000, 1.0, 10, "B L(B)", "MapX")
	mapDonor.Reduce.StaticCFG = "B BR(B|B)" // reduce side differs
	mapDonor.Reduce.StaticCategorical["REDUCER"] = "Strange"
	mapDonor.Reduce.StaticCategorical["RED_OUT_VAL"] = "Weird"
	mapDonor.Reduce.StaticCategorical["OUT_FORMATTER"] = "Odd"
	mapDonor.Reduce.StaticCategorical["RED_IN_KEY"] = "Off"
	redDonor := fab("redDonor", "jobR", 1000, 1.0, 10, "B L(B)", "MapY")
	redDonor.Map.StaticCFG = "B BR(B|)" // map side differs
	putProfile(t, st, mapDonor)
	putProfile(t, st, redDonor)

	sub := fab("sub", "jobNew", 1000, 1.0, 10, "B L(B)", "MapX")
	sub.Reduce.StaticCategorical = redDonor.Reduce.StaticCategorical
	sub.Reduce.StaticCFG = redDonor.Reduce.StaticCFG
	res, err := matcher.New().Match(context.Background(), st, sampleLike(sub, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() || !res.Composite {
		t.Fatalf("expected a composite match: %+v", res)
	}
	if res.MapJobID != "mapDonor" || res.ReduceJobID != "redDonor" {
		t.Errorf("composite donors = %s/%s", res.MapJobID, res.ReduceJobID)
	}
	// The composite profile really has the two donors' sides.
	if res.Profile.Map.StaticCFG != "B L(B)" || res.Profile.Reduce.StaticCFG != redDonor.Reduce.StaticCFG {
		t.Error("composite profile sides wrong")
	}
}

func TestMatchInputSizeTieBreak(t *testing.T) {
	st := newStore(t)
	smallRun := fab("small", "jobA", 1_000, 1.0, 10, "B L(B)", "MapA")
	bigRun := fab("big", "jobA", 1_000_000, 1.0, 10, "B L(B)", "MapA")
	putProfile(t, st, smallRun)
	putProfile(t, st, bigRun)

	sub := sampleLike(bigRun, 900_000)
	res, err := matcher.New().Match(context.Background(), st, sub)
	if err != nil {
		t.Fatal(err)
	}
	if res.MapJobID != "big" {
		t.Errorf("tie-break chose %s, want the closer input size (big)", res.MapJobID)
	}
	sub2 := sampleLike(smallRun, 2_000)
	res2, err := matcher.New().Match(context.Background(), st, sub2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MapJobID != "small" {
		t.Errorf("tie-break chose %s, want small", res2.MapJobID)
	}
}

func TestMatchBestJaccardBeatsInputSize(t *testing.T) {
	st := newStore(t)
	// A perfect code twin at a different input size must beat a
	// half-matching job at the exact input size (the DD trap).
	twin := fab("twin", "jobA", 1_000, 1.0, 10, "B L(B)", "MapA")
	sameSize := fab("samesize", "jobB", 1_000_000, 1.0, 10, "B L(B)", "DifferentMapper")
	sameSize.Map.StaticCategorical["MAP_OUT_KEY"] = "Other"
	sameSize.Map.StaticCategorical["MAP_OUT_VAL"] = "Other"
	putProfile(t, st, twin)
	putProfile(t, st, sameSize)

	res, err := matcher.New().Match(context.Background(), st, sampleLike(twin, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.MapJobID != "twin" {
		t.Errorf("matched %s, want the exact-code twin despite the size gap", res.MapJobID)
	}
}

func TestMatchStaticFirstVariant(t *testing.T) {
	st := newStore(t)
	donor := fab("donor", "jobB", 1000, 1.0, 10, "B L(B L(B))", "OtherMapper")
	putProfile(t, st, donor)
	// An unseen job: static-first fails outright (no CFG match), while
	// dynamic-first recovers via the cost fallback.
	sub := fab("sub", "jobNew", 1000, 1.0, 10, "B L(B)", "NewMapper")

	dyn := matcher.New()
	res, err := dyn.Match(context.Background(), st, sampleLike(sub, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() {
		t.Fatal("dynamic-first should fall back and match")
	}

	stat := matcher.New()
	stat.StaticFirst = true
	res2, err := stat.Match(context.Background(), st, sampleLike(sub, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Matched() {
		t.Error("static-first should fail for an unseen CFG")
	}
}

func TestMatchCostOnlyStage1(t *testing.T) {
	st := newStore(t)
	self := fab("self", "jobA", 1000, 1.0, 10, "B L(B)", "MapA")
	putProfile(t, st, self)
	m := matcher.New()
	m.CostOnlyStage1 = true
	res, err := m.Match(context.Background(), st, sampleLike(self, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() || res.MapJobID != "self" {
		t.Errorf("cost-only stage 1 failed to match the twin: %+v", res.MapReport)
	}
}

func TestMatchNilSample(t *testing.T) {
	if _, err := matcher.New().Match(context.Background(), newStore(t), nil); err == nil {
		t.Error("nil sample accepted")
	}
}

func TestSideKindString(t *testing.T) {
	if matcher.MapSide.String() != "map" || matcher.ReduceSide.String() != "reduce" {
		t.Error("SideKind strings wrong")
	}
}
