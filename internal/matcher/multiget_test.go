package matcher_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pstorm/internal/hstore"
	"pstorm/internal/matcher"
)

// countingStore wraps a MultiGetStore and counts the batched and
// per-row feature reads the matcher issues. The counters are
// mutex-guarded because Match reads both sides concurrently.
type countingStore struct {
	matcher.MultiGetStore
	mu        sync.Mutex
	multiGets int
	gets      int
}

func (c *countingStore) MultiGetFeatures(ctx context.Context, ftype string, jobIDs []string) (map[string]hstore.Row, error) {
	c.mu.Lock()
	c.multiGets++
	c.mu.Unlock()
	return c.MultiGetStore.MultiGetFeatures(ctx, ftype, jobIDs)
}

func (c *countingStore) GetFeatures(ctx context.Context, ftype, jobID string) (hstore.Row, bool, error) {
	c.mu.Lock()
	c.gets++
	c.mu.Unlock()
	return c.MultiGetStore.GetFeatures(ctx, ftype, jobID)
}

// plainStore strips the MultiGetStore upgrade so the matcher falls back
// to per-candidate point reads.
type plainStore struct{ matcher.Store }

func TestMatchBatchesStage2Reads(t *testing.T) {
	st := newStore(t)
	for i := 0; i < 4; i++ {
		putProfile(t, st, fab(fmt.Sprintf("stored-%d", i), "job", 1<<30, float64(i+1), 1, "cfg", "M"))
	}
	sample := sampleLike(fab("sample", "job", 1<<30, 2, 1, "cfg", "M"), 1<<30)

	cs := &countingStore{MultiGetStore: st.(matcher.MultiGetStore)}
	m, err := matcher.New().Match(context.Background(), cs, sample)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if !m.Matched() {
		t.Fatal("no match found")
	}
	if cs.multiGets == 0 {
		t.Error("matcher never used the batched MultiGetFeatures path")
	}
	if cs.gets != 0 {
		t.Errorf("matcher fell back to %d per-row GetFeatures calls despite MultiGetStore", cs.gets)
	}

	// The batched path must be invisible in the result: a store without
	// the upgrade matches the same donors at the same distances.
	plain, err := matcher.New().Match(context.Background(), plainStore{Store: st}, sample)
	if err != nil {
		t.Fatalf("Match (plain): %v", err)
	}
	if m.MapJobID != plain.MapJobID || m.ReduceJobID != plain.ReduceJobID {
		t.Errorf("batched match chose (%s, %s), per-row match chose (%s, %s)",
			m.MapJobID, m.ReduceJobID, plain.MapJobID, plain.ReduceJobID)
	}
	if m.MapReport.WinnerDistance != plain.MapReport.WinnerDistance ||
		m.ReduceReport.WinnerDistance != plain.ReduceReport.WinnerDistance {
		t.Errorf("batched distances (%v, %v) != per-row distances (%v, %v)",
			m.MapReport.WinnerDistance, m.ReduceReport.WinnerDistance,
			plain.MapReport.WinnerDistance, plain.ReduceReport.WinnerDistance)
	}
}
