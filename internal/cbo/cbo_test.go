package cbo

import (
	"context"
	"testing"

	"pstorm/internal/cluster"
	"pstorm/internal/conf"
	"pstorm/internal/engine"
	"pstorm/internal/whatif"
	"pstorm/internal/workloads"
)

func profileFor(t *testing.T, job, ds string) (*engine.RunResult, *cluster.Cluster, int64) {
	t.Helper()
	cl := cluster.Default16()
	eng := engine.New(cl, 42)
	spec, err := workloads.JobByName(job)
	if err != nil {
		t.Fatal(err)
	}
	d, err := workloads.DatasetByName(ds)
	if err != nil {
		t.Fatal(err)
	}
	cfg := conf.Default()
	cfg.UseCombiner = spec.HasCombiner()
	run, err := eng.Run(spec, d, cfg, engine.RunOptions{Profiling: true})
	if err != nil {
		t.Fatal(err)
	}
	return run, cl, d.NominalBytes
}

func TestOptimizeNeverWorseThanDefault(t *testing.T) {
	run, cl, in := profileFor(t, "cooccurrence-pairs", "wiki-35g")
	rec, err := Optimize(context.Background(), run.Profile, in, cl, true, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rec.PredictedMs > rec.DefaultMs {
		t.Errorf("recommendation predicted %v worse than default %v", rec.PredictedMs, rec.DefaultMs)
	}
	if err := rec.Config.Validate(); err != nil {
		t.Errorf("recommended config invalid: %v", err)
	}
	if rec.Evaluations <= 1 {
		t.Errorf("only %d What-If evaluations recorded", rec.Evaluations)
	}
}

func TestOptimizeFindsBigWinForShuffleHeavyJob(t *testing.T) {
	run, cl, in := profileFor(t, "cooccurrence-pairs", "wiki-35g")
	rec, err := Optimize(context.Background(), run.Profile, in, cl, true, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rec.PredictedSpeedup() < 3 {
		t.Errorf("co-occurrence predicted speedup %.2fx, want > 3x", rec.PredictedSpeedup())
	}
	if rec.Config.ReduceTasks < 10 {
		t.Errorf("recommended only %d reducers for a shuffle-heavy job", rec.Config.ReduceTasks)
	}
}

func TestOptimizeDeterministicPerSeed(t *testing.T) {
	run, cl, in := profileFor(t, "wordcount", "wiki-35g")
	a, err := Optimize(context.Background(), run.Profile, in, cl, true, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(context.Background(), run.Profile, in, cl, true, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config != b.Config || a.PredictedMs != b.PredictedMs {
		t.Error("same seed produced different recommendations")
	}
}

func TestOptimizeRecommendationHoldsUpInWhatIf(t *testing.T) {
	run, cl, in := profileFor(t, "bigram-relfreq", "wiki-35g")
	rec, err := Optimize(context.Background(), run.Profile, in, cl, true, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Re-evaluating the recommendation independently must agree.
	ms, err := whatif.PredictRuntime(run.Profile, in, cl, rec.Config)
	if err != nil {
		t.Fatal(err)
	}
	if ms != rec.PredictedMs {
		t.Errorf("re-evaluated prediction %v != recorded %v", ms, rec.PredictedMs)
	}
}

func TestOptions(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ExploreSamples <= 0 || o.ExploitSteps <= 0 || o.Restarts <= 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
	run, cl, in := profileFor(t, "wordcount", "wiki-35g")
	cheap, err := Optimize(context.Background(), run.Profile, in, cl, true, Options{ExploreSamples: 5, ExploitSteps: 3, Restarts: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Evaluations > 1+5+3 {
		t.Errorf("budget exceeded: %d evaluations", cheap.Evaluations)
	}
}

func TestPredictedSpeedupZeroGuard(t *testing.T) {
	r := &Recommendation{PredictedMs: 0, DefaultMs: 100}
	if r.PredictedSpeedup() != 0 {
		t.Error("zero predicted runtime should yield 0 speedup, not Inf")
	}
}
