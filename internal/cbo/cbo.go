// Package cbo implements the Starfish cost-based optimizer (§2.3.1): it
// searches the space of the 14 configuration parameters of Table 2.1,
// invoking the What-If engine at every candidate point, and recommends
// the configuration with the lowest predicted runtime. The search is
// recursive random search (the algorithm Starfish uses): global random
// exploration to find promising regions, then local neighbourhood
// exploitation around the incumbent, with restarts.
package cbo

import (
	"fmt"
	"math/rand"

	"pstorm/internal/cluster"
	"pstorm/internal/conf"
	"pstorm/internal/profile"
	"pstorm/internal/whatif"
)

// Options tune the search effort.
type Options struct {
	// ExploreSamples is the number of uniform random samples per restart
	// (default 60).
	ExploreSamples int
	// ExploitSteps is the number of local refinement steps around each
	// incumbent (default 40).
	ExploitSteps int
	// Restarts is the number of explore/exploit rounds (default 3).
	Restarts int
	// Seed drives the search's randomness (the What-If predictions
	// themselves are deterministic).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.ExploreSamples <= 0 {
		o.ExploreSamples = 60
	}
	if o.ExploitSteps <= 0 {
		o.ExploitSteps = 40
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	return o
}

// Recommendation is the optimizer's output.
type Recommendation struct {
	Config conf.Config
	// PredictedMs is the What-If runtime of the recommended config.
	PredictedMs float64
	// DefaultMs is the What-If runtime of the default config, for
	// reporting predicted speedup.
	DefaultMs float64
	// Evaluations is the number of What-If calls made.
	Evaluations int
}

// PredictedSpeedup is DefaultMs / PredictedMs.
func (r *Recommendation) PredictedSpeedup() float64 {
	if r.PredictedMs <= 0 {
		return 0
	}
	return r.DefaultMs / r.PredictedMs
}

// Optimize searches for the configuration minimizing the What-If
// predicted runtime of the job represented by prof, processing
// inputBytes on cl. The default configuration (with the job's own
// combiner setting) is always evaluated, so the recommendation is never
// worse than the default in predicted terms.
func Optimize(prof *profile.Profile, inputBytes int64, cl *cluster.Cluster, hasCombiner bool, opt Options) (*Recommendation, error) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed*2_654_435_761 + 99991))
	space := conf.DefaultSpace(cl.ReduceSlots())

	evals := 0
	predict := func(c conf.Config) (float64, error) {
		evals++
		return whatif.PredictRuntime(prof, inputBytes, cl, c)
	}

	def := conf.Default()
	def.UseCombiner = hasCombiner
	defMs, err := predict(def)
	if err != nil {
		return nil, fmt.Errorf("cbo: evaluating default config: %w", err)
	}

	best, bestMs := def, defMs
	for restart := 0; restart < opt.Restarts; restart++ {
		// Exploration: uniform random samples over the space.
		incumbent, incumbentMs := best, bestMs
		for i := 0; i < opt.ExploreSamples; i++ {
			c := space.Sample(rng)
			ms, err := predict(c)
			if err != nil {
				continue // invalid corner of the space; skip
			}
			if ms < incumbentMs {
				incumbent, incumbentMs = c, ms
			}
		}
		// Exploitation: hill-climb in the incumbent's neighbourhood.
		for i := 0; i < opt.ExploitSteps; i++ {
			c := space.Neighbor(incumbent, rng)
			ms, err := predict(c)
			if err != nil {
				continue
			}
			if ms < incumbentMs {
				incumbent, incumbentMs = c, ms
			}
		}
		if incumbentMs < bestMs {
			best, bestMs = incumbent, incumbentMs
		}
	}
	return &Recommendation{Config: best, PredictedMs: bestMs, DefaultMs: defMs, Evaluations: evals}, nil
}
