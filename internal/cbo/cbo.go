// Package cbo implements the Starfish cost-based optimizer (§2.3.1): it
// searches the space of the 14 configuration parameters of Table 2.1,
// invoking the What-If engine at every candidate point, and recommends
// the configuration with the lowest predicted runtime. The search is
// recursive random search (the algorithm Starfish uses): global random
// exploration to find promising regions, then local neighbourhood
// exploitation around the incumbent, with restarts.
//
// The search runs as deterministic batch-parallel rounds: the
// candidates of every explore/exploit round are generated up front from
// the seeded RNG, evaluated by a worker pool, and reduced in
// candidate-index order — so the recommendation is bit-identical at any
// worker count, and the worker count only changes wall-clock time.
package cbo

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"pstorm/internal/cluster"
	"pstorm/internal/conf"
	"pstorm/internal/profile"
	"pstorm/internal/whatif"
)

// exploitBatch is the fixed exploitation round size. It must not depend
// on Options.Workers: the incumbent a neighbour is generated from
// advances only at round boundaries, so a worker-count-dependent batch
// size would change the search trajectory.
const exploitBatch = 8

// Options tune the search effort.
type Options struct {
	// ExploreSamples is the number of uniform random samples per restart
	// (default 60).
	ExploreSamples int
	// ExploitSteps is the number of local refinement steps around each
	// incumbent (default 40).
	ExploitSteps int
	// Restarts is the number of explore/exploit rounds (default 3).
	Restarts int
	// Seed drives the search's randomness (the What-If predictions
	// themselves are deterministic).
	Seed int64
	// Workers is the width of the What-If evaluation worker pool
	// (default GOMAXPROCS). The recommendation is identical at every
	// worker count; see the package comment.
	Workers int
	// MaxEvaluations caps the total number of What-If evaluations,
	// truncating rounds deterministically in candidate order (0: the
	// full ExploreSamples/ExploitSteps/Restarts effort).
	MaxEvaluations int
	// Evaluator, when non-nil, memoizes What-If evaluations — share one
	// across tunes so resubmissions of the same profile are answered
	// from cache. Nil computes every prediction directly.
	Evaluator *whatif.Evaluator
}

func (o Options) withDefaults() Options {
	if o.ExploreSamples <= 0 {
		o.ExploreSamples = 60
	}
	if o.ExploitSteps <= 0 {
		o.ExploitSteps = 40
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Recommendation is the optimizer's output.
type Recommendation struct {
	Config conf.Config
	// PredictedMs is the What-If runtime of the recommended config.
	PredictedMs float64
	// DefaultMs is the What-If runtime of the default config, for
	// reporting predicted speedup.
	DefaultMs float64
	// Evaluations is the number of What-If calls made.
	Evaluations int
}

// PredictedSpeedup is DefaultMs / PredictedMs.
func (r *Recommendation) PredictedSpeedup() float64 {
	if r.PredictedMs <= 0 {
		return 0
	}
	return r.DefaultMs / r.PredictedMs
}

// Optimize searches for the configuration minimizing the What-If
// predicted runtime of the job represented by prof, processing
// inputBytes on cl. The default configuration (with the job's own
// combiner setting) is always evaluated, so the recommendation is never
// worse than the default in predicted terms. A cancelled or expired
// context aborts the search promptly (no further evaluations are
// started) and returns the context's error.
func Optimize(ctx context.Context, prof *profile.Profile, inputBytes int64, cl *cluster.Cluster, hasCombiner bool, opt Options) (*Recommendation, error) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed*2_654_435_761 + 99991))
	space := conf.DefaultSpace(cl.ReduceSlots())
	s := &search{ctx: ctx, prof: prof, inputBytes: inputBytes, cl: cl, opt: opt}

	def := whatif.Quantize(conf.Default())
	def.UseCombiner = hasCombiner
	defRes := s.evalRound([]conf.Config{def})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if defRes[0].err != nil {
		return nil, fmt.Errorf("cbo: evaluating default config: %w", defRes[0].err)
	}
	defMs := defRes[0].ms

	best, bestMs := def, defMs
	for restart := 0; restart < opt.Restarts && !s.exhausted(); restart++ {
		incumbent, incumbentMs := best, bestMs

		// Exploration: uniform random samples over the space, generated
		// up front, evaluated in parallel, reduced in index order.
		explore := make([]conf.Config, opt.ExploreSamples)
		for i := range explore {
			explore[i] = whatif.Quantize(space.Sample(rng))
		}
		explore = s.truncate(explore)
		for i, r := range s.evalRound(explore) {
			if r.err == nil && r.ms < incumbentMs {
				incumbent, incumbentMs = explore[i], r.ms
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Exploitation: hill-climb in the incumbent's neighbourhood, in
		// fixed-size rounds. Within a round every neighbour derives from
		// the same incumbent; the incumbent advances at round edges.
		for done := 0; done < opt.ExploitSteps && !s.exhausted(); {
			n := exploitBatch
			if rem := opt.ExploitSteps - done; n > rem {
				n = rem
			}
			done += n
			batch := make([]conf.Config, n)
			for i := range batch {
				batch[i] = whatif.Quantize(space.Neighbor(incumbent, rng))
			}
			batch = s.truncate(batch)
			for i, r := range s.evalRound(batch) {
				if r.err == nil && r.ms < incumbentMs {
					incumbent, incumbentMs = batch[i], r.ms
				}
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if incumbentMs < bestMs {
			best, bestMs = incumbent, incumbentMs
		}
	}
	return &Recommendation{Config: best, PredictedMs: bestMs, DefaultMs: defMs, Evaluations: s.evals}, nil
}

// search carries one OptimizeContext invocation's state.
type search struct {
	ctx        context.Context
	prof       *profile.Profile
	inputBytes int64
	cl         *cluster.Cluster
	opt        Options
	evals      int
}

// exhausted reports whether the evaluation budget is spent.
func (s *search) exhausted() bool {
	return s.opt.MaxEvaluations > 0 && s.evals >= s.opt.MaxEvaluations
}

// truncate clips a generated batch to the remaining evaluation budget.
// Generation happens before clipping so the RNG stream is identical
// with and without a budget.
func (s *search) truncate(batch []conf.Config) []conf.Config {
	if s.opt.MaxEvaluations <= 0 {
		return batch
	}
	rem := s.opt.MaxEvaluations - s.evals
	if rem < 0 {
		rem = 0
	}
	if len(batch) > rem {
		batch = batch[:rem]
	}
	return batch
}

type evalResult struct {
	ms  float64
	err error
}

// evalRound evaluates one candidate batch and returns per-candidate
// results aligned with the batch. Candidates the memoizing evaluator
// already knows are answered inline (a map lookup — no goroutines);
// only the misses go to the worker pool. A cancelled context stops
// workers from starting further evaluations; candidates skipped that
// way carry the context error.
func (s *search) evalRound(batch []conf.Config) []evalResult {
	out := make([]evalResult, len(batch))
	if len(batch) == 0 {
		return out
	}
	s.evals += len(batch)
	pending := make([]int, 0, len(batch))
	if ev := s.opt.Evaluator; ev != nil {
		for i, c := range batch {
			if ms, ok := ev.Cached(s.prof, s.inputBytes, s.cl, c); ok {
				out[i] = evalResult{ms: ms}
			} else {
				pending = append(pending, i)
			}
		}
	} else {
		for i := range batch {
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return out
	}
	workers := s.opt.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(pending) {
					return
				}
				i := pending[k]
				if err := s.ctx.Err(); err != nil {
					out[i] = evalResult{err: err}
					continue
				}
				out[i] = s.eval(batch[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// eval answers one What-If question, through the memoizing evaluator
// when one is configured.
func (s *search) eval(c conf.Config) evalResult {
	var ms float64
	var err error
	if s.opt.Evaluator != nil {
		ms, err = s.opt.Evaluator.PredictRuntime(s.prof, s.inputBytes, s.cl, c)
	} else {
		ms, err = whatif.PredictRuntime(s.prof, s.inputBytes, s.cl, c)
	}
	return evalResult{ms: ms, err: err}
}
