package cbo

import (
	"context"
	"errors"
	"testing"
	"time"

	"pstorm/internal/whatif"
)

// The parallel search must be bit-identical at every worker count and
// across runs: the whole point of the batch-round design is that the
// worker pool only changes wall-clock time, never the recommendation.
func TestOptimizeIdenticalAcrossWorkerCounts(t *testing.T) {
	run, cl, in := profileFor(t, "cooccurrence-pairs", "wiki-35g")
	var want *Recommendation
	for _, workers := range []int{1, 4, 16} {
		for attempt := 0; attempt < 2; attempt++ {
			rec, err := Optimize(context.Background(), run.Profile, in, cl, true, Options{Seed: 11, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if want == nil {
				want = rec
				continue
			}
			if rec.Config != want.Config {
				t.Errorf("workers=%d attempt=%d: config diverged from workers=1", workers, attempt)
			}
			if rec.PredictedMs != want.PredictedMs || rec.DefaultMs != want.DefaultMs {
				t.Errorf("workers=%d attempt=%d: predicted %v/%v, want %v/%v",
					workers, attempt, rec.PredictedMs, rec.DefaultMs, want.PredictedMs, want.DefaultMs)
			}
			if rec.Evaluations != want.Evaluations {
				t.Errorf("workers=%d attempt=%d: %d evaluations, want %d",
					workers, attempt, rec.Evaluations, want.Evaluations)
			}
		}
	}
}

// A shared memoizing evaluator must not change the recommendation
// either — cached answers are exact, so cached and uncached searches
// agree bit-for-bit even when tunes repeat.
func TestOptimizeIdenticalWithEvaluator(t *testing.T) {
	run, cl, in := profileFor(t, "wordcount", "wiki-35g")
	plain, err := Optimize(context.Background(), run.Profile, in, cl, true, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	eval := whatif.NewEvaluator(whatif.EvaluatorOptions{})
	for i := 0; i < 2; i++ {
		rec, err := Optimize(context.Background(), run.Profile, in, cl, true, Options{Seed: 9, Workers: 4, Evaluator: eval})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Config != plain.Config || rec.PredictedMs != plain.PredictedMs || rec.Evaluations != plain.Evaluations {
			t.Errorf("run %d through evaluator diverged from the uncached search", i)
		}
	}
	if eval.Hits() == 0 {
		t.Error("repeat tune produced no cache hits")
	}
}

func TestOptimizeContextCancellation(t *testing.T) {
	run, cl, in := profileFor(t, "wordcount", "wiki-35g")
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // the deadline has certainly expired
	start := time.Now()
	_, err := Optimize(ctx, run.Profile, in, cl, true, Options{Seed: 1, Workers: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled search took %v to return", elapsed)
	}
}

func TestOptimizeMaxEvaluationsBudget(t *testing.T) {
	run, cl, in := profileFor(t, "wordcount", "wiki-35g")
	rec, err := Optimize(context.Background(), run.Profile, in, cl, true, Options{Seed: 2, MaxEvaluations: 25, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Evaluations > 25 {
		t.Errorf("budget 25 exceeded: %d evaluations", rec.Evaluations)
	}
	// The truncation must be deterministic too.
	again, err := Optimize(context.Background(), run.Profile, in, cl, true, Options{Seed: 2, MaxEvaluations: 25})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Config != again.Config || rec.Evaluations != again.Evaluations {
		t.Error("budgeted search not deterministic across worker counts")
	}
}
