package mlearn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// stepData builds a dataset where y is a step function of feature 0.
func stepData(n int, seed int64) ([][]float64, []float64) {
	r := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x0 := r.Float64()
		x1 := r.Float64() // pure noise feature
		X[i] = []float64{x0, x1}
		if x0 < 0.5 {
			y[i] = 1
		} else {
			y[i] = 5
		}
	}
	return X, y
}

func TestTreeLearnsStepFunction(t *testing.T) {
	X, y := stepData(400, 1)
	tree, err := FitTree(X, y, TreeOptions{MaxDepth: 2, MinLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{0.1, 0.9}); math.Abs(got-1) > 0.3 {
		t.Errorf("predict(low) = %v, want ~1", got)
	}
	if got := tree.Predict([]float64{0.9, 0.1}); math.Abs(got-5) > 0.3 {
		t.Errorf("predict(high) = %v, want ~5", got)
	}
	if tree.Depth() < 1 {
		t.Error("tree did not split at all")
	}
}

func TestTreeRespectsMinLeaf(t *testing.T) {
	X, y := stepData(30, 2)
	tree, err := FitTree(X, y, TreeOptions{MaxDepth: 10, MinLeaf: 20})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Errorf("depth %d with MinLeaf 20 over 30 rows, want a single leaf", tree.Depth())
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := FitTree(nil, nil, TreeOptions{}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1, 2}, TreeOptions{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

// Property: tree predictions stay within the observed target range.
func TestTreePredictionRangeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 60 + r.Intn(100)
		X := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range X {
			X[i] = []float64{r.Float64() * 10, r.NormFloat64()}
			y[i] = r.Float64()*100 - 50
			lo, hi = math.Min(lo, y[i]), math.Max(hi, y[i])
		}
		tree, err := FitTree(X, y, TreeOptions{MaxDepth: 4, MinLeaf: 3})
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			p := tree.Predict([]float64{r.Float64() * 10, r.NormFloat64()})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGBMImprovesOnConstant(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := r.Float64(), r.Float64()
		X[i] = []float64{a, b}
		y[i] = 3*a + math.Sin(5*b) // smooth nonlinear target
	}
	m, err := FitGBM(X, y, GBMOptions{NTrees: 300, Shrinkage: 0.1, InteractionDepth: 3,
		BagFraction: 0.8, TrainFraction: 1, MinObsInNode: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	var sseModel, sseConst float64
	for i := range X {
		d := y[i] - m.Predict(X[i])
		sseModel += d * d
		c := y[i] - mean
		sseConst += c * c
	}
	if sseModel > sseConst/4 {
		t.Errorf("GBM SSE %v not much better than constant %v", sseModel, sseConst)
	}
}

func TestGBMLaplaceHandlesOutliers(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a := r.Float64()
		X[i] = []float64{a}
		y[i] = a
		if i%20 == 0 {
			y[i] = 1000 // gross outliers
		}
	}
	fit := func(d Distribution) float64 {
		m, err := FitGBM(X, y, GBMOptions{NTrees: 200, Shrinkage: 0.1, InteractionDepth: 2,
			BagFraction: 0.8, TrainFraction: 1, MinObsInNode: 5, Dist: d, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		// Median absolute error on the clean portion.
		var errs []float64
		for i := range X {
			if y[i] < 100 {
				errs = append(errs, math.Abs(y[i]-m.Predict(X[i])))
			}
		}
		return median(errs)
	}
	if lap, gau := fit(Laplace), fit(Gaussian); lap >= gau {
		t.Errorf("Laplace clean-data error %v should beat Gaussian %v under outliers", lap, gau)
	}
}

func TestGBMDeterministicPerSeed(t *testing.T) {
	X, y := stepData(150, 9)
	opt := GBRT1()
	opt.NTrees = 100
	opt.Seed = 4
	a, err := FitGBM(X, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitGBM(X, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, 0.7}
	if a.Predict(probe) != b.Predict(probe) {
		t.Error("same seed produced different models")
	}
}

func TestGBRTSettingsMatchPaper(t *testing.T) {
	g1 := GBRT1()
	if g1.NTrees != 2000 || g1.Shrinkage != 0.005 || g1.TrainFraction != 0.5 ||
		g1.CVFolds != 10 || g1.Dist != Gaussian {
		t.Errorf("GBRT1 = %+v", g1)
	}
	if GBRT2().Dist != Laplace {
		t.Error("GBRT2 should use Laplace")
	}
	g3 := GBRT3()
	if g3.NTrees != 10000 || g3.Shrinkage != 0.001 || g3.TrainFraction != 0.8 {
		t.Errorf("GBRT3 = %+v", g3)
	}
	if GBRT4().TrainFraction != 1.0 {
		t.Error("GBRT4 should train on 100% of the data")
	}
}

func TestInfoGainNumericDiscriminates(t *testing.T) {
	// Feature aligned with the class beats a noise feature.
	labels := make([]string, 200)
	aligned := make([]float64, 200)
	noise := make([]float64, 200)
	r := rand.New(rand.NewSource(1))
	for i := range labels {
		if i%2 == 0 {
			labels[i] = "a"
			aligned[i] = r.Float64()
		} else {
			labels[i] = "b"
			aligned[i] = 10 + r.Float64()
		}
		noise[i] = r.Float64()
	}
	ga := InfoGainNumeric(aligned, labels, 10)
	gn := InfoGainNumeric(noise, labels, 10)
	if ga <= gn {
		t.Errorf("aligned gain %v <= noise gain %v", ga, gn)
	}
	if ga < 0.9 {
		t.Errorf("perfectly separating feature gain %v, want ~1 bit", ga)
	}
}

func TestInfoGainCategorical(t *testing.T) {
	labels := []string{"a", "a", "b", "b"}
	perfect := []string{"x", "x", "y", "y"}
	useless := []string{"z", "z", "z", "z"}
	if g := InfoGainCategorical(perfect, labels); math.Abs(g-1) > 1e-9 {
		t.Errorf("perfect categorical gain = %v, want 1", g)
	}
	if g := InfoGainCategorical(useless, labels); g != 0 {
		t.Errorf("constant categorical gain = %v, want 0", g)
	}
}

func TestRankFeaturesOrdering(t *testing.T) {
	labels := []string{"a", "a", "b", "b"}
	ranked := RankFeatures(
		[]NumericColumn{
			{Name: "good", Values: []float64{0, 0, 10, 10}},
			{Name: "bad", Values: []float64{1, 1, 1, 1}},
		},
		[]CategoricalColumn{{Name: "cat", Values: []string{"p", "p", "q", "q"}}},
		labels, 4)
	if ranked[len(ranked)-1].Name != "bad" {
		t.Errorf("useless feature not ranked last: %v", ranked)
	}
	if !ranked[0].Categorical && ranked[0].Name != "good" {
		t.Errorf("top feature should be informative: %v", ranked[0])
	}
}

func TestNearestNeighbor(t *testing.T) {
	X := [][]float64{{0, 0}, {10, 10}, {5, 5}}
	idx, d := NearestNeighbor(X, []float64{4.6, 5.2})
	if idx != 2 {
		t.Errorf("NN = %d, want 2", idx)
	}
	if d < 0 {
		t.Errorf("distance %v negative", d)
	}
	if idx, _ := NearestNeighbor(nil, []float64{1}); idx != -1 {
		t.Error("empty X should return -1")
	}
}

// Property: NormalizedDistances are non-negative, bounded by
// sqrt(#features), and zero for an identical row.
func TestNormalizedDistancesProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nf := 1 + r.Intn(6)
		n := 2 + r.Intn(20)
		X := make([][]float64, n)
		for i := range X {
			X[i] = make([]float64, nf)
			for f := range X[i] {
				X[i][f] = r.NormFloat64() * 100
			}
		}
		q := append([]float64(nil), X[0]...)
		ds := NormalizedDistances(X, q)
		if ds[0] != 0 {
			return false
		}
		limit := math.Sqrt(float64(nf)) + 1e-9
		for _, d := range ds {
			if d < 0 || d > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
