package mlearn

import (
	"math"
	"sort"
)

// Information-gain feature ranking (§6.1.1): the generic alternative to
// PStorM's domain-specific feature selection. Features are ranked by
// the information gain of the (discretized) feature with respect to a
// class label — here the identity of the job a profile came from.

// NumericColumn is one candidate numeric feature across all samples.
type NumericColumn struct {
	Name   string
	Values []float64
}

// CategoricalColumn is one candidate categorical feature.
type CategoricalColumn struct {
	Name   string
	Values []string
}

// RankedFeature is a feature with its information-gain score.
type RankedFeature struct {
	Name        string
	Gain        float64
	Categorical bool
}

// entropy of a discrete label distribution.
func entropy(counts map[string]int, total int) float64 {
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// InfoGainNumeric computes the information gain of a numeric feature
// discretized into equal-width bins over its observed range.
func InfoGainNumeric(values []float64, labels []string, bins int) float64 {
	if len(values) == 0 || len(values) != len(labels) {
		return 0
	}
	if bins < 2 {
		bins = 10
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	binOf := func(v float64) int {
		if hi <= lo {
			return 0
		}
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		return b
	}
	total := len(values)
	classCounts := make(map[string]int)
	binClass := make([]map[string]int, bins)
	binTotal := make([]int, bins)
	for i := range binClass {
		binClass[i] = make(map[string]int)
	}
	for i, v := range values {
		classCounts[labels[i]]++
		b := binOf(v)
		binClass[b][labels[i]]++
		binTotal[b]++
	}
	h := entropy(classCounts, total)
	cond := 0.0
	for b := 0; b < bins; b++ {
		if binTotal[b] == 0 {
			continue
		}
		cond += float64(binTotal[b]) / float64(total) * entropy(binClass[b], binTotal[b])
	}
	return h - cond
}

// InfoGainCategorical computes the information gain of a categorical
// feature (each distinct value is its own partition).
func InfoGainCategorical(values []string, labels []string) float64 {
	if len(values) == 0 || len(values) != len(labels) {
		return 0
	}
	total := len(values)
	classCounts := make(map[string]int)
	partClass := make(map[string]map[string]int)
	partTotal := make(map[string]int)
	for i, v := range values {
		classCounts[labels[i]]++
		if partClass[v] == nil {
			partClass[v] = make(map[string]int)
		}
		partClass[v][labels[i]]++
		partTotal[v]++
	}
	h := entropy(classCounts, total)
	cond := 0.0
	for v, t := range partTotal {
		cond += float64(t) / float64(total) * entropy(partClass[v], t)
	}
	return h - cond
}

// RankFeatures scores every candidate feature by information gain with
// respect to the labels and returns them best first. Ties break by
// name for determinism.
func RankFeatures(numeric []NumericColumn, categorical []CategoricalColumn, labels []string, bins int) []RankedFeature {
	out := make([]RankedFeature, 0, len(numeric)+len(categorical))
	for _, col := range numeric {
		out = append(out, RankedFeature{
			Name: col.Name,
			Gain: InfoGainNumeric(col.Values, labels, bins),
		})
	}
	for _, col := range categorical {
		out = append(out, RankedFeature{
			Name:        col.Name,
			Gain:        InfoGainCategorical(col.Values, labels),
			Categorical: true,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gain != out[j].Gain {
			return out[i].Gain > out[j].Gain
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// NormalizedDistances returns the min-max-normalized Euclidean distance
// of every row of X from q, with normalization bounds computed over X
// plus q (so all distances share one scale).
func NormalizedDistances(X [][]float64, q []float64) []float64 {
	nf := len(q)
	minB := append([]float64(nil), q...)
	maxB := append([]float64(nil), q...)
	for _, row := range X {
		for f := 0; f < nf; f++ {
			if row[f] < minB[f] {
				minB[f] = row[f]
			}
			if row[f] > maxB[f] {
				maxB[f] = row[f]
			}
		}
	}
	norm := func(v float64, f int) float64 {
		if maxB[f] <= minB[f] {
			return 0
		}
		return (v - minB[f]) / (maxB[f] - minB[f])
	}
	out := make([]float64, len(X))
	for i, row := range X {
		sum := 0.0
		for f := 0; f < nf; f++ {
			d := norm(row[f], f) - norm(q[f], f)
			sum += d * d
		}
		out[i] = math.Sqrt(sum)
	}
	return out
}

// NearestNeighbor finds the row of X closest to q under min-max
// normalized Euclidean distance (the matching rule of the P-features
// and SP-features baselines). It returns the row index and distance,
// or (-1, +Inf) when X is empty.
func NearestNeighbor(X [][]float64, q []float64) (int, float64) {
	if len(X) == 0 {
		return -1, math.Inf(1)
	}
	nf := len(q)
	minB := make([]float64, nf)
	maxB := make([]float64, nf)
	copy(minB, q)
	copy(maxB, q)
	for _, row := range X {
		for f := 0; f < nf; f++ {
			if row[f] < minB[f] {
				minB[f] = row[f]
			}
			if row[f] > maxB[f] {
				maxB[f] = row[f]
			}
		}
	}
	norm := func(v float64, f int) float64 {
		if maxB[f] <= minB[f] {
			return 0
		}
		return (v - minB[f]) / (maxB[f] - minB[f])
	}
	best, bestD := -1, math.Inf(1)
	for i, row := range X {
		sum := 0.0
		for f := 0; f < nf; f++ {
			d := norm(row[f], f) - norm(q[f], f)
			sum += d * d
		}
		if d := math.Sqrt(sum); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
