// Package mlearn provides the machine-learning substrate the paper's
// baselines need: CART regression trees and gradient-boosted regression
// trees (standing in for R's gbm package, §4.4/Appendix A),
// information-gain feature ranking (the P-features and SP-features
// selection baselines of §6.1.1), and normalized nearest-neighbour
// matching.
package mlearn

import (
	"fmt"
	"math"
	"sort"
)

// RegressionTree is a CART tree fit by variance reduction.
type RegressionTree struct {
	root *treeNode
}

type treeNode struct {
	// Leaf prediction.
	value float64
	leaf  bool
	// Split.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
}

// TreeOptions control tree growth.
type TreeOptions struct {
	// MaxDepth bounds tree depth (gbm's interaction.depth); default 3.
	MaxDepth int
	// MinLeaf is the minimum observations per leaf (n.minobsinnode);
	// default 10.
	MinLeaf int
}

func (o TreeOptions) withDefaults() TreeOptions {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 10
	}
	return o
}

// FitTree grows a regression tree on rows X (features) and targets y.
func FitTree(X [][]float64, y []float64, opt TreeOptions) (*RegressionTree, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("mlearn: need matching non-empty X (%d) and y (%d)", len(X), len(y))
	}
	opt = opt.withDefaults()
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	return &RegressionTree{root: growNode(X, y, idx, opt, 0)}, nil
}

func mean(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// sse returns sum of squared errors around the subset mean.
func sse(y []float64, idx []int) float64 {
	m := mean(y, idx)
	s := 0.0
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func growNode(X [][]float64, y []float64, idx []int, opt TreeOptions, depth int) *treeNode {
	node := &treeNode{value: mean(y, idx), leaf: true}
	if depth >= opt.MaxDepth || len(idx) < 2*opt.MinLeaf {
		return node
	}
	parentSSE := sse(y, idx)
	if parentSSE <= 1e-12 {
		return node
	}
	bestGain := 0.0
	bestFeat := -1
	bestThr := 0.0
	nf := len(X[idx[0]])
	n := len(idx)
	order := make([]int, n)
	for f := 0; f < nf; f++ {
		copy(order, idx)
		fv := f
		sort.Slice(order, func(a, b int) bool { return X[order[a]][fv] < X[order[b]][fv] })
		// Sweep split positions left to right, maintaining running sums;
		// SSE(S) = sum(y²) - (sum y)²/|S|, so each candidate is O(1).
		var sumY, sumY2 float64
		var totY, totY2 float64
		for _, i := range order {
			totY += y[i]
			totY2 += y[i] * y[i]
		}
		for s := 0; s < n-1; s++ {
			i := order[s]
			sumY += y[i]
			sumY2 += y[i] * y[i]
			left := s + 1
			right := n - left
			if left < opt.MinLeaf || right < opt.MinLeaf {
				continue
			}
			v, vNext := X[i][f], X[order[s+1]][f]
			if v == vNext {
				continue // not a boundary between distinct values
			}
			sseL := sumY2 - sumY*sumY/float64(left)
			rY := totY - sumY
			sseR := (totY2 - sumY2) - rY*rY/float64(right)
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				bestGain, bestFeat, bestThr = gain, f, (v+vNext)/2
			}
		}
	}
	if bestFeat < 0 {
		return node
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	node.leaf = false
	node.feature = bestFeat
	node.threshold = bestThr
	node.left = growNode(X, y, li, opt, depth+1)
	node.right = growNode(X, y, ri, opt, depth+1)
	return node
}

// Predict evaluates the tree on one row.
func (t *RegressionTree) Predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the tree's depth (0 for a stump-less single leaf).
func (t *RegressionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	return 1 + int(math.Max(float64(l), float64(r)))
}
