package mlearn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Distribution selects the GBM loss.
type Distribution int

// Supported losses, as in R's gbm.
const (
	// Gaussian minimizes squared error.
	Gaussian Distribution = iota
	// Laplace minimizes absolute error.
	Laplace
)

func (d Distribution) String() string {
	if d == Laplace {
		return "laplace"
	}
	return "gaussian"
}

// GBMOptions mirror the gbm() parameters used in Appendix A and §6.1.2.
type GBMOptions struct {
	// NTrees is n.trees.
	NTrees int
	// Shrinkage is the learning rate.
	Shrinkage float64
	// InteractionDepth is the per-tree depth.
	InteractionDepth int
	// BagFraction subsamples rows per iteration.
	BagFraction float64
	// TrainFraction is the share of data used for fitting; the rest is
	// held out (gbm's train.fraction).
	TrainFraction float64
	// MinObsInNode is the minimum observations per leaf.
	MinObsInNode int
	// CVFolds selects the best iteration by k-fold cross validation when
	// > 1 (gbm.perf(method="cv")).
	CVFolds int
	// Dist selects the loss.
	Dist Distribution
	// Seed drives subsampling and fold assignment.
	Seed int64
}

// GBRT1 .. GBRT4 are the four parameter settings evaluated in §6.1.2.
func GBRT1() GBMOptions {
	return GBMOptions{NTrees: 2000, Shrinkage: 0.005, InteractionDepth: 3,
		BagFraction: 0.5, TrainFraction: 0.5, MinObsInNode: 10, CVFolds: 10, Dist: Gaussian}
}

// GBRT2 switches the loss to Laplace.
func GBRT2() GBMOptions {
	o := GBRT1()
	o.Dist = Laplace
	return o
}

// GBRT3 uses more, slower iterations and 80% training data.
func GBRT3() GBMOptions {
	o := GBRT2()
	o.NTrees = 10000
	o.Shrinkage = 0.001
	o.TrainFraction = 0.8
	return o
}

// GBRT4 trains on 100% of the data (the overfitting setting).
func GBRT4() GBMOptions {
	o := GBRT3()
	o.TrainFraction = 1.0
	return o
}

// GBM is a fitted gradient-boosted regression model.
type GBM struct {
	init     float64
	trees    []*RegressionTree
	shrink   float64
	bestIter int
	dist     Distribution
}

// FitGBM trains a model on X, y.
func FitGBM(X [][]float64, y []float64, opt GBMOptions) (*GBM, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("mlearn: need matching non-empty X (%d) and y (%d)", len(X), len(y))
	}
	if opt.NTrees <= 0 {
		opt.NTrees = 100
	}
	if opt.Shrinkage <= 0 {
		opt.Shrinkage = 0.1
	}
	if opt.BagFraction <= 0 || opt.BagFraction > 1 {
		opt.BagFraction = 0.5
	}
	if opt.TrainFraction <= 0 || opt.TrainFraction > 1 {
		opt.TrainFraction = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed*60013 + 7))

	// Hold out (1 - train.fraction) of the rows.
	perm := rng.Perm(len(X))
	nTrain := int(opt.TrainFraction * float64(len(X)))
	if nTrain < 2 {
		nTrain = min2(2, len(X))
	}
	trainIdx := perm[:nTrain]

	// Cross-validated best iteration.
	bestIter := opt.NTrees
	if opt.CVFolds > 1 && nTrain >= 2*opt.CVFolds {
		bestIter = cvBestIter(X, y, trainIdx, opt, rng)
	}

	m := fitBoosted(X, y, trainIdx, opt, rng, opt.NTrees)
	m.bestIter = bestIter
	return m, nil
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fitBoosted runs the boosting loop over the given row subset.
func fitBoosted(X [][]float64, y []float64, idx []int, opt GBMOptions, rng *rand.Rand, nTrees int) *GBM {
	m := &GBM{shrink: opt.Shrinkage, dist: opt.Dist}
	// Initial prediction: mean (Gaussian) or median (Laplace).
	sub := make([]float64, len(idx))
	for i, r := range idx {
		sub[i] = y[r]
	}
	if opt.Dist == Laplace {
		m.init = median(sub)
	} else {
		m.init = meanOf(sub)
	}
	f := make([]float64, len(X))
	for _, r := range idx {
		f[r] = m.init
	}
	grad := make([]float64, len(X))
	bag := int(opt.BagFraction * float64(len(idx)))
	if bag < 2 {
		bag = min2(2, len(idx))
	}
	treeOpt := TreeOptions{MaxDepth: opt.InteractionDepth, MinLeaf: opt.MinObsInNode}
	for t := 0; t < nTrees; t++ {
		// Pseudo-residuals.
		for _, r := range idx {
			switch opt.Dist {
			case Laplace:
				if y[r] > f[r] {
					grad[r] = 1
				} else if y[r] < f[r] {
					grad[r] = -1
				} else {
					grad[r] = 0
				}
			default:
				grad[r] = y[r] - f[r]
			}
		}
		// Subsample.
		bagIdx := make([]int, bag)
		p := rng.Perm(len(idx))
		for i := 0; i < bag; i++ {
			bagIdx[i] = idx[p[i]]
		}
		bx := make([][]float64, bag)
		by := make([]float64, bag)
		for i, r := range bagIdx {
			bx[i] = X[r]
			by[i] = grad[r]
		}
		tree, err := FitTree(bx, by, treeOpt)
		if err != nil {
			break
		}
		m.trees = append(m.trees, tree)
		for _, r := range idx {
			f[r] += opt.Shrinkage * tree.Predict(X[r])
		}
	}
	return m
}

// cvBestIter estimates the loss-minimizing iteration by k-fold CV.
// Evaluation points are spaced logarithmically to keep it cheap.
func cvBestIter(X [][]float64, y []float64, idx []int, opt GBMOptions, rng *rand.Rand) int {
	folds := opt.CVFolds
	assign := make([]int, len(idx))
	for i := range assign {
		assign[i] = i % folds
	}
	rng.Shuffle(len(assign), func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })

	checkpoints := iterCheckpoints(opt.NTrees)
	losses := make([]float64, len(checkpoints))
	for fold := 0; fold < folds; fold++ {
		var tr, te []int
		for i, r := range idx {
			if assign[i] == fold {
				te = append(te, r)
			} else {
				tr = append(tr, r)
			}
		}
		if len(tr) < 4 || len(te) == 0 {
			continue
		}
		m := fitBoosted(X, y, tr, opt, rng, opt.NTrees)
		for ci, it := range checkpoints {
			var loss float64
			for _, r := range te {
				pred := m.predictAt(X[r], it)
				d := y[r] - pred
				if opt.Dist == Laplace {
					loss += math.Abs(d)
				} else {
					loss += d * d
				}
			}
			losses[ci] += loss
		}
	}
	best := checkpoints[0]
	bestLoss := losses[0]
	for ci, it := range checkpoints {
		if losses[ci] < bestLoss {
			best, bestLoss = it, losses[ci]
		}
	}
	return best
}

func iterCheckpoints(n int) []int {
	var out []int
	for it := 10; it < n; it = it * 3 / 2 {
		out = append(out, it)
	}
	return append(out, n)
}

// predictAt evaluates the model truncated to the first iters trees.
func (m *GBM) predictAt(x []float64, iters int) float64 {
	if iters > len(m.trees) {
		iters = len(m.trees)
	}
	f := m.init
	for t := 0; t < iters; t++ {
		f += m.shrink * m.trees[t].Predict(x)
	}
	return f
}

// Predict evaluates the model at the CV-selected best iteration.
func (m *GBM) Predict(x []float64) float64 { return m.predictAt(x, m.bestIter) }

// BestIter reports the iteration count used by Predict.
func (m *GBM) BestIter() int { return m.bestIter }

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
