package pstorm_test

import (
	"context"
	"strings"
	"testing"

	"pstorm"
)

// TestQuickstartFlow is the README's quickstart, as a test: open a
// system, submit a job twice, watch the second submission get tuned
// from the first's stored profile.
func TestQuickstartFlow(t *testing.T) {
	sys, err := pstorm.Open(pstorm.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	job := pstorm.CoOccurrencePairs(2)
	ds, err := pstorm.DatasetByName("randomtext-1g")
	if err != nil {
		t.Fatal(err)
	}

	first, err := sys.Submit(job, ds)
	if err != nil {
		t.Fatal(err)
	}
	if first.Tuned || !first.ProfileStored {
		t.Fatalf("first submission: %s", pstorm.Describe(first))
	}
	if !strings.Contains(pstorm.Describe(first), "no matching profile") {
		t.Errorf("Describe(first) = %q", pstorm.Describe(first))
	}

	second, err := sys.Submit(job, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Tuned {
		t.Fatalf("second submission not tuned: %s", pstorm.Describe(second))
	}
	if !strings.Contains(pstorm.Describe(second), "tuned via") {
		t.Errorf("Describe(second) = %q", pstorm.Describe(second))
	}
	if second.RuntimeMs >= first.RuntimeMs {
		t.Errorf("tuned run (%.0f ms) not faster than profiled default (%.0f ms)",
			second.RuntimeMs, first.RuntimeMs)
	}

	ids, err := sys.StoredProfiles()
	if err != nil || len(ids) != 1 {
		t.Fatalf("StoredProfiles = %v, %v", ids, err)
	}
	p, err := sys.LoadProfile(ids[0])
	if err != nil || p.JobName != "cooccurrence-pairs" {
		t.Fatalf("LoadProfile: %v, %v", p, err)
	}
}

func TestOpenDefaults(t *testing.T) {
	sys, err := pstorm.Open(pstorm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Engine() == nil || sys.Store() == nil {
		t.Fatal("Open left nils")
	}
}

func TestRegisteredJobsAndDatasets(t *testing.T) {
	jobs := []*pstorm.Job{
		pstorm.WordCount(), pstorm.CoOccurrencePairs(2), pstorm.CoOccurrenceStripes(2),
		pstorm.BigramRelativeFrequency(), pstorm.InvertedIndex(), pstorm.Sort(),
		pstorm.Join(), pstorm.ItemCF(), pstorm.CloudBurst(), pstorm.Grep("x"),
	}
	jobs = append(jobs, pstorm.FrequentItemsets()...)
	jobs = append(jobs, pstorm.PigMix()...)
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Errorf("%s: %v", j.Name, err)
		}
	}
	if len(pstorm.Datasets()) < 10 {
		t.Errorf("only %d datasets registered", len(pstorm.Datasets()))
	}
}

func TestTuneAndWhatIfRoundTrip(t *testing.T) {
	sys, err := pstorm.Open(pstorm.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	job := pstorm.WordCount()
	ds, _ := pstorm.DatasetByName("randomtext-1g")
	prof, err := sys.CollectAndStore(job, ds)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sys.TuneProfile(context.Background(), prof, ds, pstorm.TuneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, predicted := rec.Config, rec.PredictedMs
	again, err := sys.WhatIf(prof, ds.NominalBytes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again != predicted {
		t.Errorf("WhatIf(%v) != Tune's prediction (%v)", again, predicted)
	}
	defMs, err := sys.WhatIf(prof, ds.NominalBytes, pstorm.DefaultConfig(job))
	if err != nil {
		t.Fatal(err)
	}
	if predicted > defMs {
		t.Errorf("tuned prediction %v worse than default %v", predicted, defMs)
	}
}

func TestCustomDatasetAndJob(t *testing.T) {
	sys, err := pstorm.Open(pstorm.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ds := pstorm.NewDataset("mine", pstorm.TeraGen, pstorm.GB/4, 123)
	ms, err := sys.Run(pstorm.Sort(), ds, pstorm.DefaultConfig(pstorm.Sort()))
	if err != nil {
		t.Fatal(err)
	}
	if ms <= 0 {
		t.Error("run returned non-positive runtime")
	}
	rboCfg, err := sys.TuneRuleBased(pstorm.Sort(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := rboCfg.Validate(); err != nil {
		t.Errorf("RBO config invalid: %v", err)
	}
}

func TestMatchWithoutExecuting(t *testing.T) {
	sys, err := pstorm.Open(pstorm.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := pstorm.DatasetByName("tera-1g")
	if _, err := sys.CollectAndStore(pstorm.Sort(), ds); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CollectAndStore(pstorm.Join(), mustDS(t, "tpch-1g")); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CollectAndStore(pstorm.WordCount(), mustDS(t, "randomtext-1g")); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Match(pstorm.Sort(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched() || !strings.HasPrefix(res.MapJobID, "sort") {
		t.Errorf("match = %+v", res)
	}
}

func mustDS(t *testing.T, name string) *pstorm.Dataset {
	t.Helper()
	ds, err := pstorm.DatasetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}
