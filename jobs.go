package pstorm

import (
	"pstorm/internal/data"
	"pstorm/internal/workloads"
)

// Benchmark job constructors, re-exported from the Table 6.1 workload.

// WordCount returns the word count job (Algorithm 1).
func WordCount() *Job { return workloads.WordCount() }

// CoOccurrencePairs returns the word co-occurrence pairs job
// (Algorithm 2) with the given sliding-window size.
func CoOccurrencePairs(window int) *Job { return workloads.CoOccurrencePairs(window) }

// CoOccurrenceStripes returns the stripes formulation.
func CoOccurrenceStripes(window int) *Job { return workloads.CoOccurrenceStripes(window) }

// BigramRelativeFrequency returns the bigram relative frequency job.
func BigramRelativeFrequency() *Job { return workloads.BigramRelativeFrequency() }

// InvertedIndex returns the inverted index job.
func InvertedIndex() *Job { return workloads.InvertedIndex() }

// Sort returns the TeraSort-style identity job.
func Sort() *Job { return workloads.Sort() }

// Join returns the TPC-H-style repartition join job.
func Join() *Job { return workloads.Join() }

// FrequentItemsets returns the three chained frequent-itemset jobs.
func FrequentItemsets() []*Job { return workloads.FrequentItemsets() }

// ItemCF returns the item-based collaborative filtering job.
func ItemCF() *Job { return workloads.ItemCF() }

// CloudBurst returns the genome read-mapping job.
func CloudBurst() *Job { return workloads.CloudBurst() }

// Grep returns the grep job with the given search pattern.
func Grep(pattern string) *Job { return workloads.Grep(pattern) }

// PigMix returns the PigMix-style query jobs.
func PigMix() []*Job { return workloads.PigMix() }

// JobByName looks up a benchmark job by its Table 6.1 name.
func JobByName(name string) (*Job, error) { return workloads.JobByName(name) }

// DatasetByName looks up a benchmark dataset by name (see Datasets).
func DatasetByName(name string) (*Dataset, error) { return workloads.DatasetByName(name) }

// Datasets returns all benchmark corpora keyed by name.
func Datasets() map[string]*Dataset { return workloads.Datasets() }

// NewDataset builds a custom synthetic dataset of one of the generator
// kinds re-exported below.
func NewDataset(name string, kind DatasetKind, nominalBytes int64, seed int64) *Dataset {
	return data.New(name, kind, nominalBytes, seed)
}

// DatasetKind selects a synthetic generator family.
type DatasetKind = data.Kind

// Generator kinds for NewDataset.
const (
	RandomText = data.KindRandomText
	Wikipedia  = data.KindWikipedia
	TPCH       = data.KindTPCH
	TeraGen    = data.KindTeraGen
	Ratings    = data.KindRatings
	WebDocs    = data.KindWebDocs
	Genome     = data.KindGenome
	PigMixData = data.KindPigMix
)

// GB is a convenience for nominal dataset sizes.
const GB = data.GB
